//! The synchronous executor and the arc-indexed message fabric.
//!
//! # The message fabric
//!
//! The LOCAL model charges one round for all messages at once, so the simulator's delivery
//! path is the hot loop of every experiment.  Three structural facts make it allocation- and
//! scan-free:
//!
//! 1. **O(1) routing.**  A message leaving `sender` on `port` arrives at the mirror arc
//!    `graph.mirror_arcs()[arc_range(sender).start + port]` — a single array read
//!    precomputed by the CSR build, replacing the per-message `port_of` scan of the
//!    receiver's adjacency list.
//! 2. **Flat mailboxes.**  Pending messages live in one arc-indexed slot buffer
//!    (`ArcMailboxes`): slot `a` holds the first message delivered to arc `a` this round,
//!    a shared spill vector absorbs the rare second message per port, and a fill list
//!    remembers which slots to clear — so a round performs no per-vertex `Vec` pushes and,
//!    on the one-message-per-port fast path, no heap allocation at all.
//! 3. **Order preservation.**  Adjacency lists are sorted, so reading a vertex's slots in
//!    port order equals the sender-index order the old `Vec<Vec<(port, msg)>>` mailboxes
//!    produced; outputs, rounds, and message counts are bit-identical to the
//!    [`reference`](crate::reference) executor (enforced by `tests/message_fabric.rs`).
//!
//! # Frontier-driven rounds
//!
//! On top of the fabric, the executor only steps the **frontier** (see
//! [`frontier`](crate::frontier)): delivering a message marks the receiver's frontier bit,
//! and [`NodeCtx::wake_next_round`] marks the caller, so a round walks the sorted frontier
//! instead of all of `0..n` — O(|frontier| + messages) per round.  Halted vertices can still
//! be marked by late mail; they are skipped at iteration time (their mailbox window is
//! consumed and dropped, matching the previous semantics of messages to halted nodes).  The
//! loop condition, round accounting, and termination check are unchanged, so rounds and
//! message counts are bit-identical to the everyone-runs executor for any program honoring
//! the activation contract of [`NodeProgram`].

use crate::cost::{default_cost_mode, BandwidthMeter, CostMode, MessageCost};
use crate::frontier::{ActiveSet, Frontier};
use crate::metrics::RoundReport;
use crate::node::{Algorithm, Inbox, NeighborIds, NodeCtx, NodeProgram, Outbox, Status};
use crate::obs;
use crate::trace::{RoundTrace, TraceConfig, TraceRecorder};
use arbcolor_graph::{Graph, Vertex};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The algorithm did not terminate within the configured round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// How many nodes were still active when the limit was hit.
        still_active: usize,
    },
    /// Under [`CostMode::Congest`], a single edge carried more bits in one round than the
    /// configured per-edge budget allows.
    CongestBudgetExceeded {
        /// The round whose deliveries exceeded the budget (1-based; round `r`'s deliveries
        /// are the messages sent in round `r - 1`, with round 1 carrying the `init` sends).
        round: usize,
        /// The vertex that sent over the overloaded edge.
        sender: Vertex,
        /// The vertex receiving over the overloaded edge.
        receiver: Vertex,
        /// The measured bit load of the edge in that round.
        bits: u64,
        /// The configured per-edge per-round budget.
        budget: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RoundLimitExceeded { limit, still_active } => write!(
                f,
                "algorithm exceeded the round limit of {limit} with {still_active} nodes still active"
            ),
            RuntimeError::CongestBudgetExceeded { round, sender, receiver, bits, budget } => {
                write!(
                    f,
                    "round {round}: edge {sender} -> {receiver} carried {bits} bits, \
                     over the CONGEST budget of {budget} bits per edge per round"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

/// The result of running an algorithm to completion.
#[derive(Debug, Clone)]
pub struct ExecutionResult<O> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<O>,
    /// Round and message accounting for this execution.
    pub report: RoundReport,
}

/// An execution result paired with the per-round activity trace that produced it — what
/// [`Executor::run_traced`] returns on success.
pub type TracedRun<O> = (ExecutionResult<O>, TraceRecorder);

/// Runs [`Algorithm`]s on a [`Graph`] until every node halts.
#[derive(Debug, Clone)]
pub struct Executor<'g> {
    graph: &'g Graph,
    max_rounds: usize,
    cost_mode: CostMode,
}

impl<'g> Executor<'g> {
    /// Default safety limit on the number of rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 1_000_000;

    /// Creates an executor for `graph` with the default round limit and the process-wide
    /// default cost mode (see [`set_default_cost_mode`](crate::set_default_cost_mode)).
    pub fn new(graph: &'g Graph) -> Self {
        Executor { graph, max_rounds: Self::DEFAULT_MAX_ROUNDS, cost_mode: default_cost_mode() }
    }

    /// Overrides the round limit (useful for tests that expect termination within a bound).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the cost mode: under [`CostMode::Congest`] the run fails with
    /// [`RuntimeError::CongestBudgetExceeded`] as soon as a round overloads an edge.
    /// Bandwidth is recorded into the [`RoundReport`] in every mode.
    #[must_use]
    pub fn with_cost_mode(mut self, cost_mode: CostMode) -> Self {
        self.cost_mode = cost_mode;
        self
    }

    /// The graph this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Runs `algorithm` until every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
    /// the configured round limit.
    pub fn run<A: Algorithm>(
        &self,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError> {
        self.run_inner(algorithm, None)
    }

    /// Runs `algorithm` like [`run`](Self::run), additionally recording one
    /// [`RoundTrace`] per round (frontier size, messages, halts, wall-clock) — the
    /// instrumentation behind the per-round activity plots of experiment E21.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
    /// the configured round limit.
    pub fn run_traced<A: Algorithm>(
        &self,
        algorithm: &A,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError> {
        self.run_traced_with(algorithm, TraceConfig::default())
    }

    /// Like [`run_traced`](Self::run_traced) with an explicit [`TraceConfig`] (e.g. to
    /// capture per-round halted-vertex identities, which are off by default).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
    /// the configured round limit.
    pub fn run_traced_with<A: Algorithm>(
        &self,
        algorithm: &A,
        config: TraceConfig,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError> {
        let mut recorder = TraceRecorder::new();
        let result = self.run_inner(algorithm, Some((&mut recorder, config)))?;
        Ok((result, recorder))
    }

    fn run_inner<A: Algorithm>(
        &self,
        algorithm: &A,
        trace: Option<(&mut TraceRecorder, TraceConfig)>,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError> {
        let span = obs::exec_span(algorithm.name());
        let (mut trace, trace_config) = match trace {
            Some((recorder, config)) => (Some(recorder), config),
            None => (None, TraceConfig::default()),
        };
        let graph = self.graph;
        let n = graph.n();
        let id_space = id_space_of(graph);
        let id_table = neighbor_id_table(graph);
        let contexts: Vec<NodeCtx> =
            graph.vertices().map(|v| node_ctx(graph, v, id_space, &id_table)).collect();
        let mut nodes: Vec<A::Node> = contexts.iter().map(|ctx| algorithm.node(ctx)).collect();
        let mut active = ActiveSet::new(n);
        let mut frontier = Frontier::new(n);
        let mut schedule: Vec<Vertex> = Vec::new();
        let mut report = RoundReport::zero();

        // The double-buffered flat mailboxes (one slot per arc) and the single outbox
        // every vertex reuses: after the warm-up fills below, a round performs no heap
        // allocation on the one-message-per-port fast path.
        let mut pending: ArcMailboxes<<A::Node as NodeProgram>::Msg> =
            ArcMailboxes::new(graph.arc_span(0..n));
        let mut inboxes: ArcMailboxes<<A::Node as NodeProgram>::Msg> =
            ArcMailboxes::new(graph.arc_span(0..n));
        let mut outbox = Outbox::new(0);
        let mut meter = BandwidthMeter::new(graph.num_arcs());

        // Initialization: local computation plus the sends of the first round.  `init` runs
        // for every vertex; from here on only the frontier is stepped.
        let mut any_outgoing = false;
        for v in 0..n {
            outbox.reset(contexts[v].degree);
            let status = nodes[v].init(&contexts[v], &mut outbox);
            let woke = contexts[v].take_wake();
            if status == Status::Halted {
                active.halt(v);
            } else if woke {
                frontier.mark(v);
            }
            any_outgoing |= !outbox.is_empty();
            deliver(graph, v, &mut outbox, &mut pending, &mut report, &mut frontier, &mut meter);
        }
        // Delivery-side trace attribution: round `r` records the messages and bits it
        // *delivers* (sent in round `r − 1`; round 1 carries the `init` sends), so the
        // per-round columns sum bit-exactly to the headline report.
        let mut carry_messages = report.messages;
        let mut carry_bits =
            meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;

        // Main loop: one iteration = one synchronous round.
        while active.count() > 0 || any_outgoing {
            if report.rounds >= self.max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.max_rounds,
                    still_active: active.count(),
                });
            }
            report.rounds += 1;
            std::mem::swap(&mut pending, &mut inboxes);
            pending.clear();
            inboxes.seal();
            frontier.take(&mut schedule);

            let round_started = trace.as_ref().map(|_| std::time::Instant::now());
            let active_at_start = active.count();
            let messages_before = report.messages;
            let mut halted_this_round: Vec<usize> = Vec::new();
            let mut halts_this_round = 0usize;
            let mut stepped = 0usize;

            any_outgoing = false;
            let mut cursor = MailboxCursor::default();
            for &v in &schedule {
                let arcs = graph.arc_range(v);
                let window = cursor.advance(&inboxes, arcs.end);
                if !active.is_active(v) {
                    // Mail to a halted vertex: consume the window, drop the messages (they
                    // were counted at send time), exactly as before the frontier.
                    continue;
                }
                stepped += 1;
                let inbox = inboxes.read(window, arcs);
                outbox.reset(contexts[v].degree);
                let status = nodes[v].round(&contexts[v], &inbox, &mut outbox);
                let woke = contexts[v].take_wake();
                if status == Status::Halted {
                    active.halt(v);
                    halts_this_round += 1;
                    if trace_config.capture_halted && trace.is_some() {
                        halted_this_round.push(v);
                    }
                } else if woke {
                    frontier.mark(v);
                }
                any_outgoing |= !outbox.is_empty();
                deliver(
                    graph,
                    v,
                    &mut outbox,
                    &mut pending,
                    &mut report,
                    &mut frontier,
                    &mut meter,
                );
            }
            let round_bits =
                meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;
            if let Some(recorder) = trace.as_deref_mut() {
                recorder.record(RoundTrace {
                    round: report.rounds,
                    active_nodes: active_at_start,
                    frontier: stepped,
                    messages: carry_messages,
                    total_bits: carry_bits.total,
                    max_edge_bits: carry_bits.max_edge,
                    halts: halts_this_round,
                    halted: halted_this_round,
                    wall_ns: round_started
                        .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                        .unwrap_or(0),
                });
            }
            carry_messages = report.messages - messages_before;
            carry_bits = round_bits;
            if active.count() == 0 {
                break;
            }
        }

        let outputs =
            nodes.iter().zip(contexts.iter()).map(|(node, ctx)| node.output(ctx)).collect();
        span.charge(report);
        if let Some(recorder) = trace {
            span.attach_trace(recorder);
        }
        obs::record_run(&report);
        Ok(ExecutionResult { outputs, report })
    }
}

/// Upper bound on the identifier space of `graph` as exposed through [`NodeCtx::id_space`].
pub(crate) fn id_space_of(graph: &Graph) -> u64 {
    graph.ids().iter().copied().max().unwrap_or(0).max(graph.n() as u64)
}

/// Builds the CSR-shaped neighbor-identifier table shared by every [`NodeCtx`] of an
/// execution: `table[a] = id(arc_target(a))`.  One allocation per run, borrowed by all
/// contexts, under both executors.
pub(crate) fn neighbor_id_table(graph: &Graph) -> Arc<[u64]> {
    (0..graph.num_arcs()).map(|a| graph.id(graph.arc_target(a))).collect()
}

/// Builds the [`NodeCtx`] of vertex `v` (shared by the sequential and sharded executors so
/// node programs observe byte-identical contexts under either).
pub(crate) fn node_ctx(graph: &Graph, v: usize, id_space: u64, id_table: &Arc<[u64]>) -> NodeCtx {
    NodeCtx::new(
        v,
        graph.id(v),
        graph.n(),
        id_space,
        graph.degree(v),
        NeighborIds::from_table(Arc::clone(id_table), graph.arc_range(v)),
    )
}

/// The vertex owning arc `a` (the *receiver* of a message pushed to slot `a`): arcs come in
/// mirror pairs, so the owner of `a` is the target of its mirror.
#[inline]
pub(crate) fn arc_owner(graph: &Graph, arc: usize) -> Vertex {
    graph.arc_target(graph.mirror_arcs()[arc])
}

/// The flat arc-indexed mailbox buffer of one executor side (pending or inbox).
///
/// Covers a contiguous arc span (the whole graph for the sequential executor, one shard's
/// arcs for the sharded one).  `slots[a - span.start]` holds the first message delivered to
/// arc `a` in the current round; additional messages to the same arc overflow into `spill`
/// in arrival order.  `filled` lists the occupied arcs so clearing is O(messages), not
/// O(arcs).
pub(crate) struct ArcMailboxes<M> {
    /// First (usually only) message per arc this round.
    slots: Vec<Option<M>>,
    /// Occupied arc indices in fill order; sorted ascending by [`ArcMailboxes::seal`].
    filled: Vec<usize>,
    /// Overflow messages as `(arc, message)`, arrival order; stably sorted by arc by
    /// [`ArcMailboxes::seal`].
    spill: Vec<(usize, M)>,
    /// First arc index covered by this buffer.
    base: usize,
}

impl<M> ArcMailboxes<M> {
    /// An empty buffer covering the given arc span.
    pub(crate) fn new(span: std::ops::Range<usize>) -> Self {
        ArcMailboxes {
            slots: (0..span.len()).map(|_| None).collect(),
            filled: Vec::new(),
            spill: Vec::new(),
            base: span.start,
        }
    }

    /// Delivers `message` to `arc` (a global arc index inside this buffer's span).
    #[inline]
    pub(crate) fn push(&mut self, arc: usize, message: M) {
        let slot = &mut self.slots[arc - self.base];
        if slot.is_none() {
            *slot = Some(message);
            self.filled.push(arc);
        } else {
            self.spill.push((arc, message));
        }
    }

    /// Prepares the buffer for reading: sorts the fill list (port order = sender order, see
    /// the module docs) and stably groups the spill by arc, preserving send order within an
    /// arc.
    pub(crate) fn seal(&mut self) {
        self.filled.sort_unstable();
        if !self.spill.is_empty() {
            self.spill.sort_by_key(|&(arc, _)| arc);
        }
    }

    /// Empties the buffer in O(messages), retaining all capacity.
    pub(crate) fn clear(&mut self) {
        for &arc in &self.filled {
            self.slots[arc - self.base] = None;
        }
        self.filled.clear();
        self.spill.clear();
    }

    /// The inbox of the vertex owning `arcs`, given its `window` from a [`MailboxCursor`] or
    /// [`ArcMailboxes::window_of`].
    pub(crate) fn read(&self, window: MailboxWindow, arcs: std::ops::Range<usize>) -> Inbox<'_, M> {
        Inbox::from_slots(
            &self.slots[arcs.start - self.base..arcs.end - self.base],
            &self.filled[window.filled],
            &self.spill[window.spill],
            arcs.start,
        )
    }

    /// The [`MailboxWindow`] of the vertex owning `arcs` in a **sealed** buffer, by binary
    /// search — O(log messages), position-independent, so the work-stealing executor can
    /// resolve windows for arbitrary frontier chunks without a sequential cursor walk.
    pub(crate) fn window_of(&self, arcs: std::ops::Range<usize>) -> MailboxWindow {
        let filled_start = self.filled.partition_point(|&a| a < arcs.start);
        let filled_end = self.filled.partition_point(|&a| a < arcs.end);
        let spill_start = self.spill.partition_point(|&(a, _)| a < arcs.start);
        let spill_end = self.spill.partition_point(|&(a, _)| a < arcs.end);
        MailboxWindow { filled: filled_start..filled_end, spill: spill_start..spill_end }
    }
}

/// Sub-ranges of a sealed [`ArcMailboxes`]'s fill and spill lists belonging to one vertex.
#[derive(Debug, Clone)]
pub(crate) struct MailboxWindow {
    filled: std::ops::Range<usize>,
    spill: std::ops::Range<usize>,
}

/// Walks a sealed [`ArcMailboxes`] in ascending vertex order, handing each vertex its
/// [`MailboxWindow`] in O(messages for that vertex) amortized.
#[derive(Default)]
pub(crate) struct MailboxCursor {
    filled_pos: usize,
    spill_pos: usize,
}

impl MailboxCursor {
    /// Consumes all fill/spill entries with arc `< arc_end` (the current vertex's arcs;
    /// callers must advance vertices in ascending order).
    pub(crate) fn advance<M>(&mut self, mail: &ArcMailboxes<M>, arc_end: usize) -> MailboxWindow {
        let filled_start = self.filled_pos;
        while self.filled_pos < mail.filled.len() && mail.filled[self.filled_pos] < arc_end {
            self.filled_pos += 1;
        }
        let spill_start = self.spill_pos;
        while self.spill_pos < mail.spill.len() && mail.spill[self.spill_pos].0 < arc_end {
            self.spill_pos += 1;
        }
        MailboxWindow { filled: filled_start..self.filled_pos, spill: spill_start..self.spill_pos }
    }
}

/// Routes the outbox of `sender` into the pending flat mailboxes: one mirror-table read per
/// message, no `port_of` scan, no allocation (the outbox is drained in place and reused).
/// Every delivery marks the receiver in `frontier` so it is stepped in the next round, and
/// charges the message's measured width to the receiving arc in `meter`.
#[inline]
pub(crate) fn deliver<M>(
    graph: &Graph,
    sender: usize,
    outbox: &mut Outbox<M>,
    pending: &mut ArcMailboxes<M>,
    report: &mut RoundReport,
    frontier: &mut Frontier,
    meter: &mut BandwidthMeter,
) where
    M: Clone + MessageCost,
{
    let first_arc = graph.arc_range(sender).start;
    let mirror = graph.mirror_arcs();
    for (port, message) in outbox.drain() {
        let arc = first_arc + port;
        meter.add(mirror[arc], message.encoded_bits());
        pending.push(mirror[arc], message);
        frontier.mark(graph.arc_target(arc));
        report.messages += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FloodMaxId, ProposeMaxId};
    use arbcolor_graph::generators;

    #[test]
    fn propose_max_id_takes_one_round() {
        let g = generators::cycle(10).unwrap().with_shuffled_ids(3);
        let result = Executor::new(&g).run(&ProposeMaxId).unwrap();
        assert_eq!(result.report.rounds, 1);
        assert_eq!(result.report.messages, 2 * g.m());
        for v in g.vertices() {
            let expected = g
                .neighbors(v)
                .iter()
                .map(|&u| g.id(u))
                .chain(std::iter::once(g.id(v)))
                .max()
                .unwrap();
            assert_eq!(result.outputs[v], expected);
        }
    }

    #[test]
    fn flood_max_id_converges_to_global_max_within_diameter_rounds() {
        let g = generators::path(12).unwrap().with_shuffled_ids(8);
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 11 }).unwrap();
        let global_max = g.ids().iter().copied().max().unwrap();
        assert!(result.outputs.iter().all(|&x| x == global_max));
        assert_eq!(result.report.rounds, 11);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(4).unwrap();
        let err =
            Executor::new(&g).with_max_rounds(3).run(&FloodMaxId { rounds: 100 }).unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3, .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn isolated_vertices_halt_immediately() {
        let g = arbcolor_graph::Graph::empty(5);
        let result = Executor::new(&g).run(&ProposeMaxId).unwrap();
        assert_eq!(result.report.rounds, 0);
        assert_eq!(result.report.messages, 0);
        for v in g.vertices() {
            assert_eq!(result.outputs[v], g.id(v));
        }
    }

    /// Sends two messages down the same port in one round: both must arrive, in send order
    /// (the spill path of the flat mailboxes).
    #[derive(Debug, Clone, Copy)]
    struct DoubleSend;

    #[derive(Debug, Clone)]
    struct DoubleSendNode {
        received: Vec<(usize, u64)>,
    }

    impl NodeProgram for DoubleSendNode {
        type Msg = u64;
        type Output = Vec<(usize, u64)>;

        fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
            for port in 0..ctx.degree {
                outbox.send(port, ctx.id * 10);
                outbox.send(port, ctx.id * 10 + 1);
            }
            Status::Active
        }

        fn round(
            &mut self,
            _ctx: &NodeCtx,
            inbox: &Inbox<'_, u64>,
            _outbox: &mut Outbox<u64>,
        ) -> Status {
            self.received = inbox.iter().map(|(p, &m)| (p, m)).collect();
            Status::Halted
        }

        fn output(&self, _ctx: &NodeCtx) -> Vec<(usize, u64)> {
            self.received.clone()
        }
    }

    impl Algorithm for DoubleSend {
        type Node = DoubleSendNode;

        fn node(&self, _ctx: &NodeCtx) -> DoubleSendNode {
            DoubleSendNode { received: Vec::new() }
        }
    }

    #[test]
    fn multiple_messages_per_port_take_the_spill_path_in_send_order() {
        let g = generators::path(3).unwrap(); // vertex 1 has ports to 0 and 2
        let result = Executor::new(&g).run(&DoubleSend).unwrap();
        assert_eq!(result.report.messages, 2 * 2 * g.m());
        let id = |v: usize| g.id(v);
        assert_eq!(
            result.outputs[1],
            vec![(0, id(0) * 10), (0, id(0) * 10 + 1), (1, id(2) * 10), (1, id(2) * 10 + 1),]
        );
        assert_eq!(result.outputs[0], vec![(0, id(1) * 10), (0, id(1) * 10 + 1)]);
    }
}
