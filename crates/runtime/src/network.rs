//! The synchronous executor.

use crate::metrics::RoundReport;
use crate::node::{Algorithm, Inbox, NodeCtx, NodeProgram, Outbox, Status};
use arbcolor_graph::Graph;
use std::error::Error;
use std::fmt;

/// Errors raised by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The algorithm did not terminate within the configured round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// How many nodes were still active when the limit was hit.
        still_active: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RoundLimitExceeded { limit, still_active } => write!(
                f,
                "algorithm exceeded the round limit of {limit} with {still_active} nodes still active"
            ),
        }
    }
}

impl Error for RuntimeError {}

/// The result of running an algorithm to completion.
#[derive(Debug, Clone)]
pub struct ExecutionResult<O> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<O>,
    /// Round and message accounting for this execution.
    pub report: RoundReport,
}

/// Runs [`Algorithm`]s on a [`Graph`] until every node halts.
#[derive(Debug, Clone)]
pub struct Executor<'g> {
    graph: &'g Graph,
    max_rounds: usize,
}

impl<'g> Executor<'g> {
    /// Default safety limit on the number of rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 1_000_000;

    /// Creates an executor for `graph` with the default round limit.
    pub fn new(graph: &'g Graph) -> Self {
        Executor { graph, max_rounds: Self::DEFAULT_MAX_ROUNDS }
    }

    /// Overrides the round limit (useful for tests that expect termination within a bound).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The graph this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Builds the [`NodeCtx`] of every vertex.
    fn contexts(&self) -> Vec<NodeCtx> {
        let g = self.graph;
        let id_space = id_space_of(g);
        g.vertices().map(|v| node_ctx(g, v, id_space)).collect()
    }

    /// Runs `algorithm` until every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
    /// the configured round limit.
    pub fn run<A: Algorithm>(
        &self,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError> {
        let n = self.graph.n();
        let contexts = self.contexts();
        let mut nodes: Vec<A::Node> = contexts.iter().map(|ctx| algorithm.node(ctx)).collect();
        let mut active = vec![true; n];
        let mut report = RoundReport::zero();

        // Pending messages for the *next* delivery, stored per receiving vertex as
        // (receiver_port, message), double-buffered against the inboxes read by the current
        // round so no per-vertex `Vec` is ever reallocated after this point.
        let mut pending: Vec<Vec<(usize, <A::Node as NodeProgram>::Msg)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut inboxes: Vec<Vec<(usize, <A::Node as NodeProgram>::Msg)>> =
            (0..n).map(|_| Vec::new()).collect();

        // Initialization: local computation plus the sends of the first round.
        let mut any_outgoing = false;
        for v in 0..n {
            let mut outbox = Outbox::new(contexts[v].degree);
            let status = nodes[v].init(&contexts[v], &mut outbox);
            if status == Status::Halted {
                active[v] = false;
            }
            any_outgoing |= !outbox.is_empty();
            deliver(self.graph, v, outbox, &mut pending, &mut report);
        }

        // Main loop: one iteration = one synchronous round.
        while active.iter().any(|&a| a) || any_outgoing {
            if report.rounds >= self.max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.max_rounds,
                    still_active: active.iter().filter(|&&a| a).count(),
                });
            }
            report.rounds += 1;
            swap_mailboxes(&mut pending, &mut inboxes);

            any_outgoing = false;
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                let inbox = Inbox::new(&inboxes[v]);
                let mut outbox = Outbox::new(contexts[v].degree);
                let status = nodes[v].round(&contexts[v], &inbox, &mut outbox);
                if status == Status::Halted {
                    active[v] = false;
                }
                any_outgoing |= !outbox.is_empty();
                deliver(self.graph, v, outbox, &mut pending, &mut report);
            }
            // Messages addressed to halted nodes are dropped at delivery time by the receiving
            // node simply never reading them; they still count as sent messages.
            if !active.iter().any(|&a| a) {
                break;
            }
        }

        let outputs =
            nodes.iter().zip(contexts.iter()).map(|(node, ctx)| node.output(ctx)).collect();
        Ok(ExecutionResult { outputs, report })
    }
}

/// Upper bound on the identifier space of `graph` as exposed through [`NodeCtx::id_space`].
pub(crate) fn id_space_of(graph: &Graph) -> u64 {
    graph.ids().iter().copied().max().unwrap_or(0).max(graph.n() as u64)
}

/// Builds the [`NodeCtx`] of vertex `v` (shared by the sequential and sharded executors so
/// node programs observe byte-identical contexts under either).
pub(crate) fn node_ctx(graph: &Graph, v: usize, id_space: u64) -> NodeCtx {
    NodeCtx {
        vertex: v,
        id: graph.id(v),
        n: graph.n(),
        id_space,
        degree: graph.degree(v),
        neighbor_ids: graph.neighbors(v).iter().map(|&u| graph.id(u)).collect(),
    }
}

/// Flips a pending/inbox mailbox double buffer: after the call, `inbox` holds what `pending`
/// accumulated, and `pending` holds the previously read (now cleared) mailboxes with their
/// capacity retained.  Shared by the sequential and sharded executors.
pub(crate) fn swap_mailboxes<T>(pending: &mut Vec<Vec<T>>, inbox: &mut Vec<Vec<T>>) {
    std::mem::swap(pending, inbox);
    for mailbox in pending.iter_mut() {
        mailbox.clear();
    }
}

/// Routes the outbox of `sender` into the pending inboxes of its neighbors.
fn deliver<M: Clone>(
    graph: &Graph,
    sender: usize,
    outbox: Outbox<M>,
    pending: &mut [Vec<(usize, M)>],
    report: &mut RoundReport,
) {
    let neighbors = graph.neighbors(sender);
    for (port, message) in outbox.into_messages() {
        let receiver = neighbors[port];
        let receiver_port = graph.port_of(receiver, sender).expect("graph adjacency is symmetric");
        pending[receiver].push((receiver_port, message));
        report.messages += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FloodMaxId, ProposeMaxId};
    use arbcolor_graph::generators;

    #[test]
    fn propose_max_id_takes_one_round() {
        let g = generators::cycle(10).unwrap().with_shuffled_ids(3);
        let result = Executor::new(&g).run(&ProposeMaxId).unwrap();
        assert_eq!(result.report.rounds, 1);
        assert_eq!(result.report.messages, 2 * g.m());
        for v in g.vertices() {
            let expected = g
                .neighbors(v)
                .iter()
                .map(|&u| g.id(u))
                .chain(std::iter::once(g.id(v)))
                .max()
                .unwrap();
            assert_eq!(result.outputs[v], expected);
        }
    }

    #[test]
    fn flood_max_id_converges_to_global_max_within_diameter_rounds() {
        let g = generators::path(12).unwrap().with_shuffled_ids(8);
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 11 }).unwrap();
        let global_max = g.ids().iter().copied().max().unwrap();
        assert!(result.outputs.iter().all(|&x| x == global_max));
        assert_eq!(result.report.rounds, 11);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(4).unwrap();
        let err =
            Executor::new(&g).with_max_rounds(3).run(&FloodMaxId { rounds: 100 }).unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3, .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn isolated_vertices_halt_immediately() {
        let g = arbcolor_graph::Graph::empty(5);
        let result = Executor::new(&g).run(&ProposeMaxId).unwrap();
        assert_eq!(result.report.rounds, 0);
        assert_eq!(result.report.messages, 0);
        for v in g.vertices() {
            assert_eq!(result.outputs[v], g.id(v));
        }
    }
}
