//! Cost accounting for multi-phase and parallel algorithm compositions.
//!
//! The paper composes procedures in two ways:
//!
//! * **sequentially** — e.g. Procedure Arbdefective-Coloring first runs Procedure
//!   Partial-Orientation and then Procedure Simple-Arbdefective; rounds add up;
//! * **in parallel on disjoint subgraphs** — e.g. Procedure Legal-Coloring recurses on all the
//!   subgraphs of the current decomposition *simultaneously*; the paper stresses that this
//!   parallelism is the key to its running time.  Disjoint subgraphs do not exchange messages,
//!   so the simulated round count of the combined phase is the *maximum* over the subgraphs.
//!
//! [`CostLedger`] records named phases with these two combinators and produces both the total
//! [`RoundReport`] and a per-phase breakdown for the experiment harness.

use crate::metrics::RoundReport;
use serde::{Deserialize, Serialize};

/// The cost of one named phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Phase name (e.g. `"h-partition"`, `"defective-coloring"`, `"dag-sweep"`).
    pub name: String,
    /// Cost of the phase.
    pub report: RoundReport,
}

/// Accumulates phase costs of a multi-phase execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    phases: Vec<PhaseCost>,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Records a sequential phase.
    pub fn push(&mut self, name: impl Into<String>, report: RoundReport) {
        self.phases.push(PhaseCost { name: name.into(), report });
    }

    /// Records a phase that consisted of parallel executions on disjoint subgraphs: the phase
    /// costs the maximum round count and the total message count of the branches.
    pub fn push_parallel(&mut self, name: impl Into<String>, branches: &[RoundReport]) {
        self.push(name, parallel_max(branches));
    }

    /// Merges another ledger's phases after this one (sequential composition).
    pub fn extend(&mut self, other: &CostLedger) {
        self.phases.extend(other.phases.iter().cloned());
    }

    /// The recorded phases in order.
    pub fn phases(&self) -> &[PhaseCost] {
        &self.phases
    }

    /// Total cost: phases compose sequentially.
    pub fn total(&self) -> RoundReport {
        self.phases.iter().fold(RoundReport::zero(), |acc, p| acc.then(p.report))
    }
}

/// Combines the reports of executions that ran concurrently on disjoint subgraphs:
/// rounds take the maximum, messages add.
pub fn parallel_max(branches: &[RoundReport]) -> RoundReport {
    branches.iter().fold(RoundReport::zero(), |acc, &r| acc.alongside(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals_phases_sequentially() {
        let mut ledger = CostLedger::new();
        ledger.push("h-partition", RoundReport::new(10, 200));
        ledger.push("sweep", RoundReport::new(4, 40));
        assert_eq!(ledger.total(), RoundReport::new(14, 240));
        assert_eq!(ledger.phases().len(), 2);
        assert_eq!(ledger.phases()[0].name, "h-partition");
    }

    #[test]
    fn parallel_branches_take_max_rounds() {
        let branches = [RoundReport::new(3, 30), RoundReport::new(7, 10), RoundReport::new(5, 5)];
        assert_eq!(parallel_max(&branches), RoundReport::new(7, 45));
        assert_eq!(parallel_max(&[]), RoundReport::zero());
    }

    #[test]
    fn push_parallel_and_extend() {
        let mut a = CostLedger::new();
        a.push_parallel("recurse", &[RoundReport::new(2, 10), RoundReport::new(9, 1)]);
        let mut b = CostLedger::new();
        b.push("final", RoundReport::new(1, 2));
        a.extend(&b);
        assert_eq!(a.total(), RoundReport::new(10, 13));
    }
}
