//! Round-by-round execution traces.
//!
//! The executor reports aggregate costs; for debugging node programs and for the per-round
//! plots in the experiment write-ups it is useful to see how activity evolves over the rounds.
//! [`TraceRecorder`] collects one [`RoundTrace`] per round (how many nodes were still active,
//! how many messages were exchanged, which vertices halted), and renders a compact activity
//! profile.

use serde::{Deserialize, Serialize};

/// What a traced run should capture beyond the always-on per-round counters.
///
/// `run_traced` on all three executors uses the default configuration; the
/// `run_traced_with` variants accept an explicit one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture the identities of the vertices that halted each round in
    /// [`RoundTrace::halted`].  Off by default: million-vertex traced runs would otherwise
    /// pay a per-round `Vec<usize>` allocation, and [`RoundTrace::halts`] (a plain counter,
    /// always filled) covers [`TraceRecorder::completion_round`].
    pub capture_halted: bool,
}

impl TraceConfig {
    /// A configuration that captures per-round halted-vertex identities.
    pub fn with_halted() -> Self {
        TraceConfig { capture_halted: true }
    }
}

/// What happened in one synchronous round.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// The round number (1-based).
    pub round: usize,
    /// Number of nodes that were still active at the start of the round.
    pub active_nodes: usize,
    /// Number of vertices actually stepped this round — the frontier: vertices with pending
    /// mail or a self-scheduled wakeup that had not halted.  This, not `active_nodes`, is
    /// what a round's work is proportional to under frontier-driven execution.
    pub frontier: usize,
    /// Number of messages delivered in this round (sent in round `round − 1`; round 1
    /// delivers the `init` sends).  Summing this column over a full trace reproduces
    /// `RoundReport::messages` bit-exactly — the invariant `tests/obs_spans.rs` pins.
    pub messages: usize,
    /// Bits across this round's deliveries, as measured by
    /// [`MessageCost`](crate::cost::MessageCost) (same delivery-side attribution as
    /// `messages`, so the column sums to `RoundReport::total_bits`).
    pub total_bits: u64,
    /// The largest bit load a single edge (per direction) carried among this round's
    /// deliveries.
    pub max_edge_bits: u64,
    /// Number of vertices that halted during this round (always filled by the executors).
    pub halts: usize,
    /// Vertices that halted during this round.  Filled only when
    /// [`TraceConfig::capture_halted`] is set — empty does **not** mean nobody halted;
    /// check [`RoundTrace::halts`].
    pub halted: Vec<usize>,
    /// Wall-clock nanoseconds the executor spent stepping this round (advisory; 0 when the
    /// recorder was filled by hand).
    pub wall_ns: u64,
}

/// Collects per-round traces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecorder {
    rounds: Vec<RoundTrace>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records one round.
    pub fn record(&mut self, trace: RoundTrace) {
        self.rounds.push(trace);
    }

    /// The recorded rounds, in order.
    pub fn rounds(&self) -> &[RoundTrace] {
        &self.rounds
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total number of messages across all recorded rounds.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// The round in which the last node halted, if any node halted at all.  Uses the
    /// always-on [`RoundTrace::halts`] counter, falling back to the opt-in
    /// [`RoundTrace::halted`] list for hand-built traces that only filled the latter.
    pub fn completion_round(&self) -> Option<usize> {
        self.rounds.iter().rev().find(|r| r.halts > 0 || !r.halted.is_empty()).map(|r| r.round)
    }

    /// The per-round frontier sizes (vertices actually stepped), in round order.
    pub fn frontier_profile(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.frontier).collect()
    }

    /// The largest per-round frontier, or 0 if nothing was recorded.
    pub fn peak_frontier(&self) -> usize {
        self.rounds.iter().map(|r| r.frontier).max().unwrap_or(0)
    }

    /// Total vertex steps across all recorded rounds (the executor's round-loop work under
    /// frontier-driven execution; an everyone-runs executor would have paid
    /// `active_nodes` per round instead).
    pub fn total_steps(&self) -> usize {
        self.rounds.iter().map(|r| r.frontier).sum()
    }

    /// A compact textual activity profile: one character per round, scaled by the fraction of
    /// nodes still active (`#` ≥ 75 %, `+` ≥ 50 %, `-` ≥ 25 %, `.` > 0 %, space = idle).
    pub fn activity_profile(&self, total_nodes: usize) -> String {
        self.rounds
            .iter()
            .map(|r| {
                if total_nodes == 0 || r.active_nodes == 0 {
                    ' '
                } else {
                    let frac = r.active_nodes as f64 / total_nodes as f64;
                    if frac >= 0.75 {
                        '#'
                    } else if frac >= 0.5 {
                        '+'
                    } else if frac >= 0.25 {
                        '-'
                    } else {
                        '.'
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        t.record(RoundTrace {
            round: 1,
            active_nodes: 10,
            frontier: 10,
            messages: 40,
            halted: vec![],
            ..RoundTrace::default()
        });
        t.record(RoundTrace {
            round: 2,
            active_nodes: 6,
            frontier: 5,
            messages: 24,
            halted: vec![3, 4],
            ..RoundTrace::default()
        });
        t.record(RoundTrace {
            round: 3,
            active_nodes: 2,
            frontier: 1,
            messages: 4,
            halted: vec![0, 1],
            ..RoundTrace::default()
        });
        t
    }

    #[test]
    fn aggregates_are_consistent() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_messages(), 68);
        assert_eq!(t.completion_round(), Some(3));
        assert_eq!(t.rounds()[1].halted, vec![3, 4]);
        assert_eq!(t.frontier_profile(), vec![10, 5, 1]);
        assert_eq!(t.peak_frontier(), 10);
        assert_eq!(t.total_steps(), 16);
    }

    #[test]
    fn activity_profile_scales_with_active_fraction() {
        let t = sample();
        assert_eq!(t.activity_profile(10), "#+.");
        assert_eq!(t.activity_profile(0), "   ");
        assert_eq!(TraceRecorder::new().activity_profile(5), "");
    }

    #[test]
    fn completion_round_prefers_the_halt_counter() {
        let mut t = TraceRecorder::new();
        t.record(RoundTrace { round: 1, halts: 0, ..RoundTrace::default() });
        t.record(RoundTrace { round: 2, halts: 3, ..RoundTrace::default() });
        t.record(RoundTrace { round: 3, halts: 0, ..RoundTrace::default() });
        assert_eq!(t.completion_round(), Some(2), "counter works without halted identities");
        assert_eq!(TraceConfig::default(), TraceConfig { capture_halted: false });
        assert!(TraceConfig::with_halted().capture_halted);
    }

    #[test]
    fn empty_recorder_has_no_completion_round() {
        assert_eq!(TraceRecorder::new().completion_round(), None);
        assert_eq!(TraceRecorder::new().total_messages(), 0);
    }
}
