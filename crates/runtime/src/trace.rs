//! Round-by-round execution traces.
//!
//! The executor reports aggregate costs; for debugging node programs and for the per-round
//! plots in the experiment write-ups it is useful to see how activity evolves over the rounds.
//! [`TraceRecorder`] collects one [`RoundTrace`] per round (how many nodes were still active,
//! how many messages were exchanged, which vertices halted), and renders a compact activity
//! profile.

use serde::{Deserialize, Serialize};

/// What happened in one synchronous round.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// The round number (1-based).
    pub round: usize,
    /// Number of nodes that were still active at the start of the round.
    pub active_nodes: usize,
    /// Number of vertices actually stepped this round — the frontier: vertices with pending
    /// mail or a self-scheduled wakeup that had not halted.  This, not `active_nodes`, is
    /// what a round's work is proportional to under frontier-driven execution.
    pub frontier: usize,
    /// Number of messages delivered in this round.
    pub messages: usize,
    /// Bits across this round's sends, as measured by
    /// [`MessageCost`](crate::cost::MessageCost) (delivered at the start of the next round,
    /// matching the send-side accounting of `messages`).
    pub total_bits: u64,
    /// The largest bit load a single edge (per direction) carried among this round's sends.
    pub max_edge_bits: u64,
    /// Vertices that halted during this round.
    pub halted: Vec<usize>,
    /// Wall-clock nanoseconds the executor spent stepping this round (advisory; 0 when the
    /// recorder was filled by hand).
    pub wall_ns: u64,
}

/// Collects per-round traces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecorder {
    rounds: Vec<RoundTrace>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records one round.
    pub fn record(&mut self, trace: RoundTrace) {
        self.rounds.push(trace);
    }

    /// The recorded rounds, in order.
    pub fn rounds(&self) -> &[RoundTrace] {
        &self.rounds
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total number of messages across all recorded rounds.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// The round in which the last node halted, if any node halted at all.
    pub fn completion_round(&self) -> Option<usize> {
        self.rounds.iter().rev().find(|r| !r.halted.is_empty()).map(|r| r.round)
    }

    /// The per-round frontier sizes (vertices actually stepped), in round order.
    pub fn frontier_profile(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.frontier).collect()
    }

    /// The largest per-round frontier, or 0 if nothing was recorded.
    pub fn peak_frontier(&self) -> usize {
        self.rounds.iter().map(|r| r.frontier).max().unwrap_or(0)
    }

    /// Total vertex steps across all recorded rounds (the executor's round-loop work under
    /// frontier-driven execution; an everyone-runs executor would have paid
    /// `active_nodes` per round instead).
    pub fn total_steps(&self) -> usize {
        self.rounds.iter().map(|r| r.frontier).sum()
    }

    /// A compact textual activity profile: one character per round, scaled by the fraction of
    /// nodes still active (`#` ≥ 75 %, `+` ≥ 50 %, `-` ≥ 25 %, `.` > 0 %, space = idle).
    pub fn activity_profile(&self, total_nodes: usize) -> String {
        self.rounds
            .iter()
            .map(|r| {
                if total_nodes == 0 || r.active_nodes == 0 {
                    ' '
                } else {
                    let frac = r.active_nodes as f64 / total_nodes as f64;
                    if frac >= 0.75 {
                        '#'
                    } else if frac >= 0.5 {
                        '+'
                    } else if frac >= 0.25 {
                        '-'
                    } else {
                        '.'
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        t.record(RoundTrace {
            round: 1,
            active_nodes: 10,
            frontier: 10,
            messages: 40,
            halted: vec![],
            ..RoundTrace::default()
        });
        t.record(RoundTrace {
            round: 2,
            active_nodes: 6,
            frontier: 5,
            messages: 24,
            halted: vec![3, 4],
            ..RoundTrace::default()
        });
        t.record(RoundTrace {
            round: 3,
            active_nodes: 2,
            frontier: 1,
            messages: 4,
            halted: vec![0, 1],
            ..RoundTrace::default()
        });
        t
    }

    #[test]
    fn aggregates_are_consistent() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_messages(), 68);
        assert_eq!(t.completion_round(), Some(3));
        assert_eq!(t.rounds()[1].halted, vec![3, 4]);
        assert_eq!(t.frontier_profile(), vec![10, 5, 1]);
        assert_eq!(t.peak_frontier(), 10);
        assert_eq!(t.total_steps(), 16);
    }

    #[test]
    fn activity_profile_scales_with_active_fraction() {
        let t = sample();
        assert_eq!(t.activity_profile(10), "#+.");
        assert_eq!(t.activity_profile(0), "   ");
        assert_eq!(TraceRecorder::new().activity_profile(5), "");
    }

    #[test]
    fn empty_recorder_has_no_completion_round() {
        assert_eq!(TraceRecorder::new().completion_round(), None);
        assert_eq!(TraceRecorder::new().total_messages(), 0);
    }
}
