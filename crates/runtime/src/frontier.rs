//! Frontier scheduling primitives shared by the executors.
//!
//! Both executors drive node programs off a **frontier**: the set of vertices that must act
//! in the upcoming round because they received a message or explicitly scheduled themselves
//! with [`NodeCtx::wake_next_round`](crate::NodeCtx::wake_next_round).  A round then costs
//! O(|frontier| + messages) instead of O(n), which is where the late rounds of the
//! headline algorithms — tiny active sets, most vertices finalized and silent — stop paying
//! for the vertices that no longer participate.
//!
//! Two small types live here so `network.rs` and `shard.rs` share one implementation instead
//! of the copy-pasted bookkeeping they used to carry:
//!
//! * [`Frontier`] — an epoch-stamped dense bitmap plus a fill list.  Marking is O(1) with
//!   mark-once dedup, enumeration is O(|frontier| log |frontier|) (the fill list is sorted
//!   into ascending vertex order so iteration is deterministic), and opening the next round
//!   is O(1): bumping the epoch invalidates every stamp at once, so there is no per-round
//!   O(n) clear.
//! * [`ActiveSet`] — the "who has not halted yet" flags with a maintained count.

use arbcolor_graph::Vertex;

/// An epoch-stamped dense vertex set with deterministic, vertex-ordered enumeration.
///
/// `stamps[v] == epoch` means `v` is marked for the upcoming round; the marked vertices are
/// also appended to a fill list so enumeration never scans all `n` stamps.  Advancing to the
/// next round just increments the epoch — every stamp becomes stale simultaneously, no
/// clearing pass required.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// `stamps[v] == epoch` ⇔ `v` is marked for the upcoming round.
    stamps: Vec<u64>,
    /// The current marking epoch (starts at 1 so the zeroed stamps mean "unmarked").
    epoch: u64,
    /// Marked vertices in mark order (deduplicated via the stamps).
    marked: Vec<Vertex>,
}

impl Frontier {
    /// An empty frontier over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        Frontier { stamps: vec![0; n], epoch: 1, marked: Vec::new() }
    }

    /// Marks `v` for the upcoming round; marking twice is a no-op.
    #[inline]
    pub fn mark(&mut self, v: Vertex) {
        if self.stamps[v] != self.epoch {
            self.stamps[v] = self.epoch;
            self.marked.push(v);
        }
    }

    /// Whether `v` is marked for the upcoming round.
    pub fn contains(&self, v: Vertex) -> bool {
        self.stamps[v] == self.epoch
    }

    /// Number of vertices marked for the upcoming round.
    pub fn len(&self) -> usize {
        self.marked.len()
    }

    /// Whether no vertex is marked.
    pub fn is_empty(&self) -> bool {
        self.marked.is_empty()
    }

    /// Closes the current epoch: moves the marked vertices into `schedule` sorted into
    /// ascending vertex order (deterministic iteration regardless of mark order), and opens
    /// the next epoch.  O(|frontier| log |frontier|); the buffer swap retains capacity.
    pub fn take(&mut self, schedule: &mut Vec<Vertex>) {
        schedule.clear();
        std::mem::swap(&mut self.marked, schedule);
        schedule.sort_unstable();
        self.epoch += 1;
    }
}

/// Halt bookkeeping shared by the executors: one flag per vertex plus a maintained count,
/// replacing the `Vec<bool>` + `active_count` pairs previously duplicated between the
/// sequential and sharded executors.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    live: Vec<bool>,
    count: usize,
}

impl ActiveSet {
    /// All of `0..n` active.
    pub fn new(n: usize) -> Self {
        ActiveSet { live: vec![true; n], count: n }
    }

    /// Whether `v` has not halted.
    #[inline]
    pub fn is_active(&self, v: Vertex) -> bool {
        self.live[v]
    }

    /// Marks `v` halted; idempotent.
    #[inline]
    pub fn halt(&mut self, v: Vertex) {
        if self.live[v] {
            self.live[v] = false;
            self.count -= 1;
        }
    }

    /// Number of vertices still active.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_dedups_and_enumerates_in_vertex_order() {
        let mut f = Frontier::new(8);
        assert!(f.is_empty());
        for v in [5, 2, 5, 7, 2, 0] {
            f.mark(v);
        }
        assert_eq!(f.len(), 4);
        assert!(f.contains(5) && f.contains(0) && !f.contains(1));
        let mut schedule = Vec::new();
        f.take(&mut schedule);
        assert_eq!(schedule, vec![0, 2, 5, 7]);
        // The epoch bump invalidates all stamps at once: nothing stays marked.
        assert!(f.is_empty());
        assert!(!f.contains(5));
    }

    #[test]
    fn epochs_do_not_leak_across_rounds() {
        let mut f = Frontier::new(4);
        let mut schedule = Vec::new();
        f.mark(1);
        f.take(&mut schedule);
        assert_eq!(schedule, vec![1]);
        // Re-marking the same vertex in the new epoch works; unmarked vertices stay out.
        f.mark(1);
        f.mark(3);
        f.take(&mut schedule);
        assert_eq!(schedule, vec![1, 3]);
        f.take(&mut schedule);
        assert!(schedule.is_empty());
    }

    #[test]
    fn active_set_counts_and_is_idempotent() {
        let mut a = ActiveSet::new(3);
        assert_eq!(a.count(), 3);
        assert!(a.is_active(2));
        a.halt(2);
        a.halt(2);
        assert_eq!(a.count(), 2);
        assert!(!a.is_active(2));
        a.halt(0);
        a.halt(1);
        assert_eq!(a.count(), 0);
    }
}
