//! Workspace host crate.
//!
//! This package exists so the workspace-level `tests/` (cross-crate integration and
//! property suites) and `examples/` directories are attached to a cargo package and
//! built by `cargo test` / `cargo build --examples`. It deliberately exports nothing;
//! the real library surface lives in the `crates/` members:
//!
//! * [`arbcolor`](https://example.invalid/arbcolor) (`crates/core`) — the paper's procedures.
//! * `arbcolor_graph` (`crates/graph`) — graph substrate.
//! * `arbcolor_decompose` (`crates/decompose`) — prior-work decompositions.
//! * `arbcolor_runtime` (`crates/runtime`) — LOCAL-model simulator.
//! * `arbcolor_baselines` (`crates/baselines`) — comparison algorithms.
//! * `arbcolor_bench` (`crates/bench`) — experiment harness and Criterion benches.

#![forbid(unsafe_code)]
