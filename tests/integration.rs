//! Cross-crate integration tests: the paper's algorithms, the substrates and the baselines
//! working together on shared workloads, with every output independently validated by the
//! graph layer.

use arbcolor::legal_coloring::{
    a_power_coloring, o_a_coloring, sparse_delta_plus_one, APowerParams, OaParams,
};
use arbcolor::mis::mis_bounded_arboricity;
use arbcolor::tradeoffs::{color_time_tradeoff, sub_quadratic_coloring};
use arbcolor_baselines::registry::standard_baselines;
use arbcolor_graph::{degeneracy, generators, Graph};

/// The workload families every end-to-end test iterates over.
fn workloads() -> Vec<(String, Graph, usize)> {
    let mut out = Vec::new();
    let forest = generators::union_of_random_forests(400, 3, 1).unwrap().with_shuffled_ids(2);
    out.push(("forest-union a=3".to_string(), forest, 3));
    let stars = generators::star_forest_union(500, 2, 4, 3).unwrap().with_shuffled_ids(4);
    let a = degeneracy::degeneracy(&stars).max(1);
    out.push(("star-forests".to_string(), stars, a));
    let pa = generators::barabasi_albert(400, 3, 5).unwrap().with_shuffled_ids(6);
    out.push(("preferential-attachment".to_string(), pa, 3));
    let grid = generators::grid(18, 18).unwrap().with_shuffled_ids(7);
    out.push(("grid".to_string(), grid, 2));
    let gnp = generators::gnp(300, 0.03, 8).unwrap().with_shuffled_ids(9);
    let a = degeneracy::degeneracy(&gnp).max(1);
    out.push(("gnp".to_string(), gnp, a));
    out
}

#[test]
fn headline_algorithm_is_legal_on_every_workload() {
    for (name, g, a) in workloads() {
        let run = a_power_coloring(&g, a, APowerParams { eta: 0.5, epsilon: 1.0 })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.coloring.is_legal(&g), "{name}: illegal coloring");
        assert!(run.colors_used as u64 <= run.palette_bound, "{name}: palette accounting broken");
        assert_eq!(run.coloring.defect(&g), 0, "{name}: defect must be zero for a legal coloring");
    }
}

#[test]
fn o_a_coloring_uses_colors_proportional_to_degeneracy_not_degree() {
    for (name, g, a) in workloads() {
        let run = o_a_coloring(&g, a, OaParams { mu: 0.5, epsilon: 1.0 })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.coloring.is_legal(&g), "{name}");
        // Colors are a function of the arboricity bound, never of n.
        assert!(
            run.colors_used <= 80 * a.max(1),
            "{name}: {} colors for degeneracy {a}",
            run.colors_used
        );
    }
}

#[test]
fn sparse_regime_beats_degree_based_palettes() {
    // Corollary 4.7 workload: arboricity ≪ Δ.
    let g = generators::star_forest_union(700, 2, 3, 11).unwrap().with_shuffled_ids(12);
    let a = degeneracy::degeneracy(&g).max(1);
    let ours = sparse_delta_plus_one(&g, a, 0.5, 1.0).unwrap();
    assert!(ours.coloring.is_legal(&g));
    assert!(ours.colors_used <= g.max_degree() + 1);

    // Linial's palette on the same graph is quadratic in Δ — the gap the paper closes.
    let linial = arbcolor_decompose::linial::linial_coloring(&g).unwrap();
    assert!(linial.coloring.is_legal(&g));
    assert!(
        ours.colors_used < linial.colors_used,
        "paper {} vs Linial {}",
        ours.colors_used,
        linial.colors_used
    );
}

#[test]
fn tradeoffs_cover_the_color_time_spectrum() {
    let g = generators::union_of_random_forests(400, 6, 13).unwrap().with_shuffled_ids(14);
    let sub_quadratic = sub_quadratic_coloring(&g, 6, 2, 1.0, 1.0).unwrap();
    assert!(sub_quadratic.coloring.is_legal(&g));
    for t in [1usize, 3, 6] {
        let run = color_time_tradeoff(&g, 6, t, 0.5, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g), "t = {t}");
    }
}

#[test]
fn mis_is_valid_on_every_workload() {
    for (name, g, a) in workloads() {
        let mis = mis_bounded_arboricity(&g, a, 0.5, 1.0).unwrap_or_else(|e| panic!("{name}: {e}"));
        mis.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn baselines_and_paper_agree_on_legality() {
    let g = generators::union_of_random_forests(250, 3, 15).unwrap().with_shuffled_ids(16);
    let a = 3;
    let ours = a_power_coloring(&g, a, APowerParams { eta: 1.0, epsilon: 1.0 }).unwrap();
    assert!(ours.coloring.is_legal(&g));
    for baseline in standard_baselines(17) {
        let outcome =
            baseline.run(&g).unwrap_or_else(|e| panic!("{} failed: {e}", baseline.name()));
        assert!(outcome.coloring.is_legal(&g), "{}", outcome.name);
    }
}

#[test]
fn rounds_grow_polylogarithmically_with_n_for_fixed_arboricity() {
    // The headline claim, measured: quadrupling n must not blow up the round count by more
    // than a constant factor plus the log n growth.
    let small = generators::union_of_random_forests(300, 3, 18).unwrap().with_shuffled_ids(19);
    let large = generators::union_of_random_forests(2400, 3, 18).unwrap().with_shuffled_ids(19);
    let r_small =
        a_power_coloring(&small, 3, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap().report.rounds;
    let r_large =
        a_power_coloring(&large, 3, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap().report.rounds;
    let log_ratio = (2400f64).log2() / (300f64).log2();
    assert!(
        (r_large as f64) <= (r_small as f64) * 3.0 * log_ratio,
        "rounds grew from {r_small} to {r_large}, more than polylogarithmic growth allows"
    );
}
