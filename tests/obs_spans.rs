//! Observability suite: phase spans, traced rounds, and their determinism contract.
//!
//! Two invariants are pinned here, both across all three executors (sequential flat,
//! work-stealing sharded at several thread counts and a non-default chunk size, and the
//! pre-fabric reference):
//!
//! * **Trace/report consistency** — the per-round `messages` and `total_bits` columns of a
//!   [`TraceRecorder`] sum to the headline [`RoundReport`](arbcolor_runtime::RoundReport)
//!   of the same run, and every deterministic per-round column is bit-identical across
//!   executors (`frontier` excluded for the reference executor, which steps every active
//!   vertex and documents `frontier == stepped`).
//! * **Phase attribution** — the spans the instrumented drivers record for a headliner run
//!   roll up (`obs::phase_rollup`) to the exact headline report, and the per-phase reports
//!   are themselves bit-identical across executors.

use arbcolor_baselines::registry::congest_headliners;
use arbcolor_graph::generators;
use arbcolor_runtime::algorithms::FloodMaxId;
use arbcolor_runtime::{
    default_chunk_size, default_executor, default_sequential_cutoff, obs, set_default_chunk_size,
    set_default_executor, set_default_sequential_cutoff, Executor, ExecutorKind, ReferenceExecutor,
    RoundReport, ShardedExecutor, TraceConfig, TraceRecorder,
};

mod common;
use common::generator_suite;

/// The deterministic columns of one round, in executor-comparable form (no `frontier`: the
/// reference executor's documented divergence; no `wall_ns`: advisory).
fn deterministic_rounds(recorder: &TraceRecorder) -> Vec<(usize, usize, usize, u64, u64, usize)> {
    recorder
        .rounds()
        .iter()
        .map(|r| (r.round, r.active_nodes, r.messages, r.total_bits, r.max_edge_bits, r.halts))
        .collect()
}

#[test]
fn per_round_columns_sum_to_the_report_on_every_executor() {
    for (family, g) in generator_suite(48, 91) {
        let flood = FloodMaxId { rounds: 4 };
        let (seq, seq_trace) = Executor::new(&g).run_traced(&flood).unwrap();
        let (reference, ref_trace) = ReferenceExecutor::new(&g).run_traced(&flood).unwrap();
        let mut traces = vec![("seq", &seq, seq_trace), ("reference", &reference, ref_trace)];

        let sharded_runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                ShardedExecutor::new(&g)
                    .with_threads(threads)
                    .with_chunk_size(7)
                    .with_sequential_cutoff(0)
                    .run_traced(&flood)
                    .unwrap()
            })
            .collect();
        for (result, recorder) in &sharded_runs {
            traces.push(("sharded", result, recorder.clone()));
        }

        for (label, result, recorder) in &traces {
            assert_eq!(
                recorder.len(),
                result.report.rounds,
                "{label} on {family}: one RoundTrace per round"
            );
            let messages: usize = recorder.rounds().iter().map(|r| r.messages).sum();
            assert_eq!(messages, result.report.messages, "{label} messages on {family}");
            let bits: u64 = recorder.rounds().iter().map(|r| r.total_bits).sum();
            assert_eq!(bits, result.report.total_bits, "{label} total_bits on {family}");
            let max_edge: u64 =
                recorder.rounds().iter().map(|r| r.max_edge_bits).max().unwrap_or(0);
            assert_eq!(max_edge, result.report.max_edge_bits, "{label} max_edge on {family}");
            // Default config: halts are counted, identities are not captured.
            assert!(recorder.rounds().iter().all(|r| r.halted.is_empty()), "{label} {family}");
        }

        // Bit-identity of the deterministic columns across all five runs.
        let baseline = deterministic_rounds(&traces[0].2);
        for (label, _, recorder) in &traces[1..] {
            assert_eq!(
                deterministic_rounds(recorder),
                baseline,
                "{label} per-round columns diverge on {family}"
            );
        }
        // The flat executors also agree on the frontier column (the reference does not
        // track one and reports stepped == active instead).
        let frontiers: Vec<usize> = traces[0].2.frontier_profile();
        for (result, recorder) in &sharded_runs {
            assert_eq!(recorder.frontier_profile(), frontiers, "frontier on {family}");
            assert_eq!(result.report, traces[0].1.report, "sharded report on {family}");
        }
    }
}

#[test]
fn halted_capture_is_opt_in_and_consistent() {
    let g = generators::cycle(24).unwrap();
    let flood = FloodMaxId { rounds: 3 };
    let (_, default_trace) = Executor::new(&g).run_traced(&flood).unwrap();
    assert!(default_trace.rounds().iter().all(|r| r.halted.is_empty()));
    assert!(default_trace.completion_round().is_some(), "halt counters back the fallback");

    let (_, full_trace) =
        Executor::new(&g).run_traced_with(&flood, TraceConfig::with_halted()).unwrap();
    for (lean, full) in default_trace.rounds().iter().zip(full_trace.rounds()) {
        assert_eq!(lean.halts, full.halts);
        assert_eq!(full.halted.len(), full.halts, "identities match the counter");
    }
    assert_eq!(default_trace.completion_round(), full_trace.completion_round());

    // The sharded executor captures the same identities, in the same (chunk-ascending,
    // i.e. vertex-ascending) order as the sequential schedule.
    let (_, sharded_full) = ShardedExecutor::new(&g)
        .with_threads(2)
        .with_chunk_size(5)
        .with_sequential_cutoff(0)
        .run_traced_with(&flood, TraceConfig::with_halted())
        .unwrap();
    let halted = |t: &TraceRecorder| -> Vec<Vec<usize>> {
        t.rounds().iter().map(|r| r.halted.clone()).collect()
    };
    assert_eq!(halted(&sharded_full), halted(&full_trace));
    let (_, reference_full) =
        ReferenceExecutor::new(&g).run_traced_with(&flood, TraceConfig::with_halted()).unwrap();
    assert_eq!(halted(&reference_full), halted(&full_trace));
}

#[test]
fn executors_record_exec_spans_with_round_instants() {
    let g = generators::random_tree(60, 5).unwrap();
    let collector = obs::SpanCollector::new();
    let _guard = obs::install(&collector);
    let (result, _) = Executor::new(&g).run_traced(&FloodMaxId { rounds: 3 }).unwrap();
    let spans = collector.snapshot();
    assert_eq!(spans.len(), 1);
    let span = &spans[0];
    assert_eq!(span.kind, obs::SpanKind::Exec);
    assert_eq!(span.report, result.report);
    assert_eq!(span.rounds.len(), result.report.rounds, "one instant per traced round");
    let metrics = collector.metrics();
    let counters: Vec<(String, u64)> =
        metrics.counters().map(|(k, v)| (k.to_string(), v)).collect();
    assert!(counters.iter().any(|(k, v)| k == "executor.runs" && *v == 1));
    assert!(counters
        .iter()
        .any(|(k, v)| k == "executor.rounds" && *v == result.report.rounds as u64));
}

/// Restores the process-wide executor configuration even if an assertion unwinds.
struct ExecutorConfigGuard {
    executor: ExecutorKind,
    chunk: usize,
    cutoff: usize,
}

impl ExecutorConfigGuard {
    fn capture() -> Self {
        ExecutorConfigGuard {
            executor: default_executor(),
            chunk: default_chunk_size(),
            cutoff: default_sequential_cutoff(),
        }
    }
}

impl Drop for ExecutorConfigGuard {
    fn drop(&mut self) {
        set_default_executor(self.executor);
        set_default_chunk_size(self.chunk);
        set_default_sequential_cutoff(self.cutoff);
    }
}

/// One headliner's rollup: its name plus the `(phase name, phase report)` attribution.
type HeadlinerRollup = (String, Vec<(String, RoundReport)>);

#[test]
fn headliner_phase_rollups_sum_to_the_report_and_match_across_executors() {
    let _restore = ExecutorConfigGuard::capture();
    let g = generators::union_of_random_forests(300, 3, 57).unwrap().with_shuffled_ids(4);

    // name → (phase name, deterministic phase report fields) per executor kind.
    let mut per_kind: Vec<Vec<HeadlinerRollup>> = Vec::new();
    for kind in [
        ExecutorKind::Sequential,
        ExecutorKind::sharded(1),
        ExecutorKind::sharded(2),
        ExecutorKind::sharded(4),
        ExecutorKind::Reference,
    ] {
        set_default_executor(kind);
        set_default_chunk_size(7); // non-default, to prove chunking cannot leak into costs
        set_default_sequential_cutoff(0);

        let collector = obs::SpanCollector::new();
        let _guard = obs::install(&collector);
        let mut rollups = Vec::new();
        for algorithm in congest_headliners(42) {
            let parent = collector.len();
            let span = obs::phase(algorithm.name());
            let outcome = algorithm.run(&g).unwrap();
            span.charge(outcome.report);
            drop(span);

            let spans = collector.snapshot();
            let phases = obs::phase_rollup(&spans, parent);
            assert!(!phases.is_empty(), "{} recorded no phases under {kind:?}", outcome.name);
            let sum = phases.iter().fold(RoundReport::zero(), |acc, (_, r)| acc.then(*r));
            assert_eq!(
                (sum.rounds, sum.messages, sum.total_bits),
                (outcome.report.rounds, outcome.report.messages, outcome.report.total_bits),
                "{} phases do not sum to the headline report under {kind:?}",
                outcome.name
            );
            rollups.push((outcome.name.clone(), phases));
        }
        per_kind.push(rollups);
    }

    // The full phase attribution — names, order, and every deterministic field — is
    // bit-identical across all five executor configurations.
    for other in &per_kind[1..] {
        assert_eq!(other, &per_kind[0], "phase rollups diverge across executors");
    }
    // And the vocabulary matches the instrumented drivers.
    let be = &per_kind[0][0];
    assert!(be.1.iter().any(|(name, _)| name == "legal-coloring"), "{be:?}");
    let gk = &per_kind[0][1];
    assert!(gk.1.iter().any(|(name, _)| name.starts_with("level-")), "{gk:?}");
    let hkmt = &per_kind[0][2];
    assert!(hkmt.1.iter().any(|(name, _)| name == "random-trials"), "{hkmt:?}");
}
