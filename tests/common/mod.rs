//! Shared fixtures for the root-package integration suites.
//!
//! This module is included via `mod common;` (cargo does not treat `tests/` subdirectories
//! as test targets).  The generator list itself lives in
//! [`arbcolor_graph::generators::seeded_suite`] so every equivalence suite across the
//! workspace — including `crates/graph/tests/mirror_ports.rs`, which cannot see this
//! module — draws from one list and coverage cannot silently drift apart.

use arbcolor_graph::{generators, Graph};

/// One seeded representative per generator family (see `generators::seeded_suite`).
pub fn generator_suite(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    generators::seeded_suite(n, seed)
}
