//! Cross-crate property suite for the dynamic-recoloring driver.
//!
//! The contract of `arbcolor::dynamic` is that after every `apply` batch the maintained
//! coloring is (a) legal on the mutated graph, (b) within `Δ + 1` colors once `compact()`
//! reclaims deletion slack, and (c) untouched outside the conflict frontier under local
//! repair — and that the whole update sequence is bit-identical across executor kinds.
//! This suite drives those claims over the full generator suite with randomized hold-out
//! batches and interleaved insert/delete streams.

use arbcolor::dynamic::{DynamicColoring, GraphUpdate, RepairStrategy};
use arbcolor_graph::{Graph, Vertex};
use arbcolor_runtime::{default_executor, set_default_executor, ExecutorKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

mod common;
use common::generator_suite;

/// Splits `graph` into a base graph (identifiers preserved) plus `batches` round-robin
/// hold-out batches of every `stride`-th edge.
fn hold_out(graph: &Graph, stride: usize, batches: usize) -> (Graph, Vec<Vec<(Vertex, Vertex)>>) {
    let mut kept = Vec::new();
    let mut held: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); batches];
    for (e, &edge) in graph.edges().iter().enumerate() {
        if e % stride == 0 {
            held[(e / stride) % batches].push(edge);
        } else {
            kept.push(edge);
        }
    }
    let base = Graph::from_edges(graph.n(), kept)
        .expect("subset of valid edges")
        .with_vertex_ids(graph.ids().to_vec())
        .expect("ids are inherited");
    (base, held)
}

/// A deterministic delete batch: a pseudo-random sample of the current edges.
fn delete_batch(g: &Graph, rng: &mut ChaCha8Rng, count: usize) -> Vec<(Vertex, Vertex)> {
    (0..count.min(g.m())).map(|_| g.edges()[rng.gen_range(0..g.m())]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn insertion_batches_keep_the_coloring_legal_on_the_generator_suite(
        n in 16usize..80,
        seed in 0u64..1_000,
        stride in 3usize..9,
    ) {
        for (family, g) in generator_suite(n, seed) {
            if g.m() < 4 {
                continue;
            }
            let (base, batches) = hold_out(&g, stride, 2);
            let mut dynamic = DynamicColoring::new(base).expect("initial coloring");
            for batch in &batches {
                let before = dynamic.coloring().clone();
                let outcome =
                    dynamic.apply(&[GraphUpdate::InsertEdges(batch.clone())]).unwrap();
                prop_assert!(dynamic.coloring().is_legal(dynamic.graph()),
                    "illegal after a batch on {}", family);
                prop_assert!(
                    dynamic.coloring().distinct_colors() <= dynamic.graph().max_degree() + 1,
                    "palette exceeded Δ+1 on {}", family);
                prop_assert!(outcome.frontier <= 2 * batch.len(), "frontier bound on {}", family);
                if outcome.strategy == RepairStrategy::LocalRepair {
                    // Local repair only ever recolors frontier vertices.
                    let changed: Vec<Vertex> = dynamic
                        .coloring()
                        .colors()
                        .iter()
                        .zip(before.colors())
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(v, _)| v)
                        .collect();
                    prop_assert!(changed.len() <= outcome.frontier,
                        "local repair touched non-frontier vertices on {}", family);
                    prop_assert_eq!(&changed, &outcome.repaired, "repaired set on {}", family);
                }
            }
            // The final graph is the original one (same edges, same identifiers).
            prop_assert_eq!(dynamic.graph().edges(), g.edges(), "edges restored on {}", family);
        }
    }

    #[test]
    fn interleaved_insert_delete_batches_stay_legal_and_compact_within_the_palette_bound(
        n in 16usize..72,
        seed in 0u64..1_000,
    ) {
        for (family, g) in generator_suite(n, seed) {
            if g.m() < 6 {
                continue;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ n as u64);
            let (base, batches) = hold_out(&g, 3, 3);
            let mut dynamic = DynamicColoring::new(base).expect("initial coloring");
            for batch in &batches {
                // One mixed batch per round: re-insert held-out edges and delete a random
                // sample of the current ones in the same `apply` call.
                let deletions = delete_batch(dynamic.graph(), &mut rng, batch.len());
                let outcome = dynamic
                    .apply(&[
                        GraphUpdate::InsertEdges(batch.clone()),
                        GraphUpdate::RemoveEdges(deletions),
                    ])
                    .unwrap();
                prop_assert!(dynamic.coloring().is_legal(dynamic.graph()),
                    "illegal after a mixed batch on {}", family);
                prop_assert!(outcome.frontier <= 2 * batch.len(), "frontier bound on {}", family);
            }
            // Deletions may leave palette slack; compaction must reclaim it down to the
            // (deg+1) bound of the *current* graph, monotonically.
            let before = dynamic.coloring().distinct_colors();
            let delta = dynamic.compact();
            prop_assert_eq!(delta.colors_before, before, "delta bookkeeping on {}", family);
            prop_assert!(delta.colors_after <= delta.colors_before,
                "compaction increased colors on {}", family);
            prop_assert!(
                dynamic.coloring().distinct_colors() <= dynamic.graph().max_degree() + 1,
                "compacted palette exceeded Δ+1 on {}", family);
            prop_assert!(dynamic.coloring().is_legal(dynamic.graph()),
                "compaction broke legality on {}", family);
        }
    }
}

/// The same mixed update sequence (inserts, deletes, and a compaction sweep) replayed
/// under every executor kind produces bit-identical colorings and batch outcomes (the
/// E20/E25 guarantee, pinned here at test sizes).
#[test]
fn repair_sequences_are_bit_identical_across_executor_kinds() {
    let g = arbcolor_graph::generators::union_of_random_forests(300, 3, 17)
        .unwrap()
        .with_shuffled_ids(4);
    let (base, batches) = hold_out(&g, 5, 3);
    /// Final colors, per-batch `(frontier, repaired)` counts, and the compaction delta of
    /// one replay.
    type SequenceFingerprint = (Vec<u64>, Vec<(usize, Vec<Vertex>)>, (usize, usize));
    let previous = default_executor();
    let mut reference: Option<SequenceFingerprint> = None;
    for kind in [ExecutorKind::Sequential, ExecutorKind::sharded(3), ExecutorKind::Reference] {
        set_default_executor(kind);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut dynamic = DynamicColoring::new(base.clone()).unwrap();
        let mut counts = Vec::new();
        for batch in &batches {
            let deletions = delete_batch(dynamic.graph(), &mut rng, 4);
            let outcome = dynamic
                .apply(&[
                    GraphUpdate::InsertEdges(batch.clone()),
                    GraphUpdate::RemoveEdges(deletions),
                ])
                .unwrap();
            counts.push((outcome.frontier, outcome.repaired.clone()));
        }
        let delta = dynamic.compact();
        let colors = dynamic.coloring().colors().to_vec();
        match &reference {
            None => reference = Some((colors, counts, (delta.colors_after, delta.recolored))),
            Some((ref_colors, ref_counts, ref_delta)) => {
                assert_eq!(&colors, ref_colors, "colorings diverged under {kind:?}");
                assert_eq!(&counts, ref_counts, "repair counts diverged under {kind:?}");
                assert_eq!(
                    &(delta.colors_after, delta.recolored),
                    ref_delta,
                    "compaction diverged under {kind:?}"
                );
            }
        }
    }
    set_default_executor(previous);
}

/// Ingested fixtures flow through the dynamic driver end to end (the E20 pipeline at its
/// smallest: parse from disk, hold out, re-insert, stay legal).
#[test]
fn ingested_graph_survives_dynamic_growth() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/datasets/karate.edges");
    let g = arbcolor_graph::io::read_graph(path).expect("karate fixture parses");
    let (base, batches) = hold_out(&g, 6, 2);
    let mut dynamic = DynamicColoring::new(base).unwrap();
    for batch in &batches {
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(batch.clone())]).unwrap();
        assert!(outcome.repaired_vertices() < g.n());
    }
    assert_eq!(dynamic.graph().m(), g.m());
    assert!(dynamic.coloring().is_legal(dynamic.graph()));
}
