//! Cross-crate property suite for the dynamic-recoloring driver.
//!
//! The contract of `arbcolor::dynamic` is that after every insertion batch the maintained
//! coloring is (a) legal on the grown graph, (b) within `Δ + 1` colors, and (c) untouched
//! outside the conflict frontier under local repair — and that the whole sequence is
//! bit-identical across executor kinds.  This suite drives those claims over the full
//! generator suite with randomized hold-out batches.

use arbcolor::dynamic::{DynamicColoring, RepairStrategy};
use arbcolor_graph::{Graph, Vertex};
use arbcolor_runtime::{default_executor, set_default_executor, ExecutorKind};
use proptest::prelude::*;

mod common;
use common::generator_suite;

/// Splits `graph` into a base graph (identifiers preserved) plus `batches` round-robin
/// hold-out batches of every `stride`-th edge.
fn hold_out(graph: &Graph, stride: usize, batches: usize) -> (Graph, Vec<Vec<(Vertex, Vertex)>>) {
    let mut kept = Vec::new();
    let mut held: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); batches];
    for (e, &edge) in graph.edges().iter().enumerate() {
        if e % stride == 0 {
            held[(e / stride) % batches].push(edge);
        } else {
            kept.push(edge);
        }
    }
    let base = Graph::from_edges(graph.n(), kept)
        .expect("subset of valid edges")
        .with_vertex_ids(graph.ids().to_vec())
        .expect("ids are inherited");
    (base, held)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn insertion_batches_keep_the_coloring_legal_on_the_generator_suite(
        n in 16usize..80,
        seed in 0u64..1_000,
        stride in 3usize..9,
    ) {
        for (family, g) in generator_suite(n, seed) {
            if g.m() < 4 {
                continue;
            }
            let (base, batches) = hold_out(&g, stride, 2);
            let mut dynamic = DynamicColoring::new(base).expect("initial coloring");
            for batch in &batches {
                let before = dynamic.coloring().clone();
                let outcome = dynamic.insert_edges(batch).unwrap();
                prop_assert!(dynamic.coloring().is_legal(dynamic.graph()),
                    "illegal after a batch on {}", family);
                prop_assert!(
                    dynamic.coloring().distinct_colors() <= dynamic.graph().max_degree() + 1,
                    "palette exceeded Δ+1 on {}", family);
                prop_assert!(outcome.frontier <= 2 * batch.len(), "frontier bound on {}", family);
                if outcome.strategy == RepairStrategy::LocalRepair {
                    // Local repair only ever recolors frontier vertices.
                    let changed = dynamic
                        .coloring()
                        .colors()
                        .iter()
                        .zip(before.colors())
                        .filter(|(a, b)| a != b)
                        .count();
                    prop_assert!(changed <= outcome.frontier,
                        "local repair touched non-frontier vertices on {}", family);
                    prop_assert_eq!(changed, outcome.repaired_vertices,
                        "repair count on {}", family);
                }
            }
            // The final graph is the original one (same edges, same identifiers).
            prop_assert_eq!(dynamic.graph().edges(), g.edges(), "edges restored on {}", family);
        }
    }
}

/// The same insertion sequence replayed under every executor kind produces bit-identical
/// colorings and batch outcomes (the E20 guarantee, pinned here at test sizes).
#[test]
fn repair_sequences_are_bit_identical_across_executor_kinds() {
    let g = arbcolor_graph::generators::union_of_random_forests(300, 3, 17)
        .unwrap()
        .with_shuffled_ids(4);
    let (base, batches) = hold_out(&g, 5, 3);
    /// Final colors plus per-batch `(frontier, repaired)` counts of one replay.
    type SequenceFingerprint = (Vec<u64>, Vec<(usize, usize)>);
    let previous = default_executor();
    let mut reference: Option<SequenceFingerprint> = None;
    for kind in [ExecutorKind::Sequential, ExecutorKind::sharded(3), ExecutorKind::Reference] {
        set_default_executor(kind);
        let mut dynamic = DynamicColoring::new(base.clone()).unwrap();
        let mut counts = Vec::new();
        for batch in &batches {
            let outcome = dynamic.insert_edges(batch).unwrap();
            counts.push((outcome.frontier, outcome.repaired_vertices));
        }
        let colors = dynamic.coloring().colors().to_vec();
        match &reference {
            None => reference = Some((colors, counts)),
            Some((ref_colors, ref_counts)) => {
                assert_eq!(&colors, ref_colors, "colorings diverged under {kind:?}");
                assert_eq!(&counts, ref_counts, "repair counts diverged under {kind:?}");
            }
        }
    }
    set_default_executor(previous);
}

/// Ingested fixtures flow through the dynamic driver end to end (the E20 pipeline at its
/// smallest: parse from disk, hold out, re-insert, stay legal).
#[test]
fn ingested_graph_survives_dynamic_growth() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/datasets/karate.edges");
    let g = arbcolor_graph::io::read_graph(path).expect("karate fixture parses");
    let (base, batches) = hold_out(&g, 6, 2);
    let mut dynamic = DynamicColoring::new(base).unwrap();
    for batch in &batches {
        let outcome = dynamic.insert_edges(batch).unwrap();
        assert!(outcome.repaired_vertices < g.n());
    }
    assert_eq!(dynamic.graph().m(), g.m());
    assert!(dynamic.coloring().is_legal(dynamic.graph()));
}
