//! Cross-crate equivalence suite for the sharded parallel simulator.
//!
//! The contract of `arbcolor_runtime::shard` is that the [`ShardedExecutor`] is
//! **bit-identical** to the sequential [`Executor`] — same per-vertex outputs, same round
//! count, same message count — for every graph, every shard count, and every thread count.
//! This suite drives that claim over the full generator suite with randomized sizes and
//! seeds, and checks it end to end through the headline coloring pipelines dispatched via
//! the process-wide executor switch.

use arbcolor_baselines::registry::headline_algorithms;
use arbcolor_graph::generators;
use arbcolor_runtime::algorithms::{FloodMaxId, ProposeMaxId};
use arbcolor_runtime::{
    default_executor, set_default_executor, Executor, ExecutorKind, ShardedExecutor,
};
use proptest::prelude::*;

/// Shard counts the equivalence is driven over (1 = degenerate, primes, > #vertices of the
/// smallest graphs).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

mod common;
use common::generator_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_executor_is_bit_identical_on_the_generator_suite(
        n in 16usize..90,
        seed in 0u64..1_000,
        rounds in 1usize..8,
    ) {
        for (family, g) in generator_suite(n, seed) {
            let flood = FloodMaxId { rounds };
            let flood_seq = Executor::new(&g).run(&flood).unwrap();
            let propose_seq = Executor::new(&g).run(&ProposeMaxId).unwrap();
            for shards in SHARD_COUNTS {
                let sharded = ShardedExecutor::new(&g)
                    .with_threads(2)
                    .with_shards(shards)
                    .with_sequential_cutoff(0);
                let flood_sh = sharded.run(&flood).unwrap();
                prop_assert_eq!(&flood_sh.outputs, &flood_seq.outputs, "flood on {}", family);
                prop_assert_eq!(flood_sh.report, flood_seq.report, "flood cost on {}", family);
                let propose_sh = sharded.run(&ProposeMaxId).unwrap();
                prop_assert_eq!(&propose_sh.outputs, &propose_seq.outputs, "propose on {}", family);
                prop_assert_eq!(propose_sh.report, propose_seq.report, "propose cost on {}", family);
            }
        }
    }
}

#[test]
fn repeated_sharded_runs_with_different_thread_counts_agree() {
    let g = generators::union_of_random_forests(300, 4, 9).unwrap().with_shuffled_ids(2);
    let flood = FloodMaxId { rounds: 12 };
    let reference = ShardedExecutor::new(&g)
        .with_threads(1)
        .with_shards(5)
        .with_sequential_cutoff(0)
        .run(&flood)
        .unwrap();
    for repetition in 0..3 {
        for threads in [1usize, 2, 3, 8] {
            let again = ShardedExecutor::new(&g)
                .with_threads(threads)
                .with_shards(5)
                .with_sequential_cutoff(0)
                .run(&flood)
                .unwrap();
            assert_eq!(
                again.outputs, reference.outputs,
                "outputs drifted at threads={threads}, repetition={repetition}"
            );
            assert_eq!(again.report, reference.report);
        }
    }
}

#[test]
fn shard_count_never_changes_results() {
    let g = generators::gnp(250, 0.02, 41).unwrap().with_shuffled_ids(6);
    let flood = FloodMaxId { rounds: 9 };
    let reference = Executor::new(&g).run(&flood).unwrap();
    for shards in [1usize, 2, 3, 7, 11, 250, 400] {
        let sharded = ShardedExecutor::new(&g)
            .with_threads(3)
            .with_shards(shards)
            .with_sequential_cutoff(0)
            .run(&flood)
            .unwrap();
        assert_eq!(sharded.outputs, reference.outputs, "shards={shards}");
        assert_eq!(sharded.report, reference.report, "shards={shards}");
    }
}

#[test]
fn headline_pipelines_are_identical_under_the_sharded_kind() {
    // End-to-end: the full Barenboim–Elkin and Ghaffari–Kuhn pipelines, dispatched through
    // the process-wide executor switch the whole stack consults, must produce the same
    // coloring and the same LOCAL cost under every executor configuration.
    let g = generators::union_of_random_forests(400, 3, 33).unwrap().with_shuffled_ids(7);
    let previous = default_executor();
    for algorithm in headline_algorithms() {
        set_default_executor(ExecutorKind::Sequential);
        let sequential = algorithm.run(&g).unwrap();
        for threads in [2usize, 4] {
            set_default_executor(ExecutorKind::sharded(threads));
            let sharded = algorithm.run(&g).unwrap();
            assert_eq!(sharded.colors, sequential.colors, "{} palette", sequential.name);
            assert_eq!(sharded.report, sequential.report, "{} cost", sequential.name);
            assert_eq!(
                sharded.coloring.colors(),
                sequential.coloring.colors(),
                "{} per-vertex colors",
                sequential.name
            );
        }
    }
    set_default_executor(previous);
}
