//! Cross-crate equivalence suite for the work-stealing parallel simulator.
//!
//! The contract of `arbcolor_runtime::shard` is that the [`ShardedExecutor`] is
//! **bit-identical** to the sequential [`Executor`] and to the [`ReferenceExecutor`] oracle
//! — same per-vertex outputs, same round count, same message count — for every graph, every
//! chunk size, and every thread count.  This suite drives that claim over the full generator
//! suite with randomized sizes and seeds, and checks it end to end through the headline
//! coloring pipelines dispatched via the process-wide executor switch.

use arbcolor_baselines::registry::headline_algorithms;
use arbcolor_graph::generators;
use arbcolor_runtime::algorithms::{FloodMaxId, ProposeMaxId};
use arbcolor_runtime::{
    default_executor, default_sequential_cutoff, set_default_executor,
    set_default_sequential_cutoff, Executor, ExecutorKind, ReferenceExecutor, ShardedExecutor,
};
use proptest::prelude::*;

/// Thread counts the equivalence matrix is driven over.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Chunk sizes the equivalence matrix is driven over (1 = one vertex per steal, 64 =
/// several chunks per round on the suite's graphs, 4096 = larger than every frontier so a
/// single worker claims everything).
const CHUNK_SIZES: [usize; 3] = [1, 64, 4096];

mod common;
use common::generator_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn work_stealing_is_bit_identical_across_kinds_on_the_generator_suite(
        n in 16usize..90,
        seed in 0u64..1_000,
        rounds in 1usize..8,
    ) {
        for (family, g) in generator_suite(n, seed) {
            let flood = FloodMaxId { rounds };
            let flood_seq = Executor::new(&g).run(&flood).unwrap();
            let propose_seq = Executor::new(&g).run(&ProposeMaxId).unwrap();
            // The oracle executor (pre-fabric, everyone-runs, no frontier code) must agree
            // with the frontier-driven sequential executor...
            let flood_ref = ReferenceExecutor::new(&g).run(&flood).unwrap();
            prop_assert_eq!(&flood_ref.outputs, &flood_seq.outputs, "flood oracle on {}", family);
            prop_assert_eq!(flood_ref.report, flood_seq.report, "flood oracle cost on {}", family);
            let propose_ref = ReferenceExecutor::new(&g).run(&ProposeMaxId).unwrap();
            prop_assert_eq!(&propose_ref.outputs, &propose_seq.outputs, "propose oracle on {}", family);
            prop_assert_eq!(propose_ref.report, propose_seq.report, "propose oracle cost on {}", family);
            // ...and so must the work-stealing executor at every (threads, chunk) config.
            for threads in THREAD_COUNTS {
                for chunk_size in CHUNK_SIZES {
                    let stolen = ShardedExecutor::new(&g)
                        .with_threads(threads)
                        .with_chunk_size(chunk_size)
                        .with_sequential_cutoff(0);
                    let flood_ws = stolen.run(&flood).unwrap();
                    prop_assert_eq!(
                        &flood_ws.outputs, &flood_seq.outputs,
                        "flood on {} (threads={}, chunk={})", family, threads, chunk_size
                    );
                    prop_assert_eq!(flood_ws.report, flood_seq.report, "flood cost on {}", family);
                    let propose_ws = stolen.run(&ProposeMaxId).unwrap();
                    prop_assert_eq!(
                        &propose_ws.outputs, &propose_seq.outputs,
                        "propose on {} (threads={}, chunk={})", family, threads, chunk_size
                    );
                    prop_assert_eq!(propose_ws.report, propose_seq.report, "propose cost on {}", family);
                }
            }
        }
    }
}

#[test]
fn repeated_work_stealing_runs_with_different_thread_counts_agree() {
    let g = generators::union_of_random_forests(300, 4, 9).unwrap().with_shuffled_ids(2);
    let flood = FloodMaxId { rounds: 12 };
    let reference = ShardedExecutor::new(&g)
        .with_threads(1)
        .with_chunk_size(16)
        .with_sequential_cutoff(0)
        .run(&flood)
        .unwrap();
    for repetition in 0..3 {
        for threads in [1usize, 2, 3, 8] {
            let again = ShardedExecutor::new(&g)
                .with_threads(threads)
                .with_chunk_size(16)
                .with_sequential_cutoff(0)
                .run(&flood)
                .unwrap();
            assert_eq!(
                again.outputs, reference.outputs,
                "outputs drifted at threads={threads}, repetition={repetition}"
            );
            assert_eq!(again.report, reference.report);
        }
    }
}

#[test]
fn chunk_size_never_changes_results() {
    let g = generators::gnp(250, 0.02, 41).unwrap().with_shuffled_ids(6);
    let flood = FloodMaxId { rounds: 9 };
    let reference = Executor::new(&g).run(&flood).unwrap();
    for chunk_size in [1usize, 2, 3, 7, 11, 250, 4096] {
        let stolen = ShardedExecutor::new(&g)
            .with_threads(3)
            .with_chunk_size(chunk_size)
            .with_sequential_cutoff(0)
            .run(&flood)
            .unwrap();
        assert_eq!(stolen.outputs, reference.outputs, "chunk_size={chunk_size}");
        assert_eq!(stolen.report, reference.report, "chunk_size={chunk_size}");
    }
}

#[test]
fn headline_pipelines_are_identical_under_every_executor_kind() {
    // End-to-end: the full Barenboim–Elkin and Ghaffari–Kuhn pipelines, dispatched through
    // the process-wide executor switch the whole stack consults, must produce the same
    // coloring and the same LOCAL cost under every executor configuration.
    let g = generators::union_of_random_forests(400, 3, 33).unwrap().with_shuffled_ids(7);
    let previous = default_executor();
    let previous_cutoff = default_sequential_cutoff();
    // Force the work-stealing path even on this small graph (and on the smaller subgraphs
    // the recursive drivers spawn).
    set_default_sequential_cutoff(0);
    for algorithm in headline_algorithms() {
        set_default_executor(ExecutorKind::Sequential);
        let sequential = algorithm.run(&g).unwrap();
        let kinds = [
            ExecutorKind::Reference,
            ExecutorKind::Sharded { threads: 2, chunk_size: 64 },
            ExecutorKind::Sharded { threads: 4, chunk_size: 1 },
        ];
        for kind in kinds {
            set_default_executor(kind);
            let parallel = algorithm.run(&g).unwrap();
            assert_eq!(parallel.colors, sequential.colors, "{} palette", sequential.name);
            assert_eq!(parallel.report, sequential.report, "{} cost", sequential.name);
            assert_eq!(
                parallel.coloring.colors(),
                sequential.coloring.colors(),
                "{} per-vertex colors",
                sequential.name
            );
        }
    }
    set_default_executor(previous);
    set_default_sequential_cutoff(previous_cutoff);
}
