//! Property-based tests spanning the graph, decompose and core crates: randomized graph
//! shapes and parameters, with the paper's invariants checked on every sample.

use arbcolor::arbdefective_coloring::arbdefective_coloring;
use arbcolor::legal_coloring::{legal_coloring, LegalColoringParams};
use arbcolor::orientation_procs::partial_orientation;
use arbcolor_decompose::hpartition::h_partition;
use arbcolor_graph::{degeneracy, generators, Coloring, Graph, Orientation};
use proptest::prelude::*;

/// Strategy: a union of `k` random forests on `n` vertices (arboricity ≤ k by construction).
fn forest_union() -> impl Strategy<Value = (Graph, usize)> {
    (20usize..120, 1usize..5, 0u64..1000).prop_map(|(n, k, seed)| {
        let g = generators::union_of_random_forests(n, k, seed)
            .expect("valid parameters")
            .with_shuffled_ids(seed + 1);
        (g, k)
    })
}

/// Strategy: an arbitrary sparse G(n, p) graph.
fn sparse_gnp() -> impl Strategy<Value = Graph> {
    (20usize..150, 0u64..1000).prop_map(|(n, seed)| {
        generators::gnp(n, 4.0 / n as f64, seed).expect("valid p").with_shuffled_ids(seed + 3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn h_partition_property_holds_on_random_forest_unions((g, k) in forest_union()) {
        let hp = h_partition(&g, k, 1.0).unwrap();
        hp.verify(&g).unwrap();
        // Every vertex is assigned to exactly one bucket in 1..=num_buckets.
        prop_assert!(hp.h_index.iter().all(|&h| h >= 1 && h <= hp.num_buckets));
    }

    #[test]
    fn degeneracy_sandwiches_the_design_arboricity((g, k) in forest_union()) {
        let d = degeneracy::degeneracy(&g);
        prop_assert!(d <= 2 * k, "degeneracy {} exceeds 2a = {}", d, 2 * k);
        prop_assert!(degeneracy::arboricity_lower_bound(&g) <= k);
    }

    #[test]
    fn partial_orientation_invariants((g, k) in forest_union(), t in 1usize..5) {
        let oriented = partial_orientation(&g, k, t, 1.0).unwrap();
        prop_assert!(oriented.orientation.is_acyclic(&g));
        prop_assert!(oriented.orientation.max_out_degree(&g) <= oriented.out_degree_bound);
        prop_assert!(oriented.orientation.max_deficit(&g) <= oriented.deficit_bound);
    }

    #[test]
    fn arbdefective_coloring_witnesses_always_verify((g, k) in forest_union(), p in 2usize..5) {
        let out = arbdefective_coloring(&g, k, p as u64, p, 1.0).unwrap();
        let worst = out.coloring.verify(&g).unwrap();
        prop_assert!(worst <= out.arbdefect_bound());
        prop_assert!(out.coloring.coloring.max_color() < p as u64);
    }

    #[test]
    fn legal_coloring_is_always_legal_with_bounded_palette((g, k) in forest_union()) {
        let run = legal_coloring(&g, k, LegalColoringParams { p: 6, epsilon: 1.0 }).unwrap();
        prop_assert!(run.coloring.is_legal(&g));
        prop_assert!(run.colors_used as u64 <= run.palette_bound);
    }

    #[test]
    fn legal_coloring_works_on_gnp_with_degeneracy_bound(g in sparse_gnp()) {
        let a = degeneracy::degeneracy(&g).max(1);
        let run = legal_coloring(&g, a, LegalColoringParams { p: 6, epsilon: 1.0 }).unwrap();
        prop_assert!(run.coloring.is_legal(&g));
    }

    #[test]
    fn orientation_completion_preserves_acyclicity_and_directions(g in sparse_gnp()) {
        // Lemma 3.1 on arbitrary partial orientations derived from a degeneracy ranking with
        // some edges erased.
        let ordering = degeneracy::degeneracy_ordering(&g);
        let full = Orientation::from_ranking(&g, &ordering.rank);
        let mut partial = full.clone();
        for e in (0..g.m()).step_by(3) {
            let (u, v) = g.endpoints(e);
            partial.unorient(&g, u, v).unwrap();
        }
        let completed = partial.complete_acyclically(&g).unwrap();
        prop_assert!(completed.is_acyclic(&g));
        prop_assert_eq!(completed.unoriented_count(), 0);
        for e in 0..g.m() {
            if partial.is_oriented(e) {
                prop_assert_eq!(completed.head(&g, e), partial.head(&g, e));
            }
        }
    }

    #[test]
    fn coloring_validators_agree_with_each_other(g in sparse_gnp()) {
        // A coloring is legal iff its defect is 0 iff it has no conflicts.
        let c = Coloring::from_ids(&g);
        prop_assert!(c.is_legal(&g));
        prop_assert_eq!(c.defect(&g), 0);
        prop_assert!(c.conflicts(&g).is_empty());
        let mono = Coloring::constant(&g);
        prop_assert_eq!(mono.is_legal(&g), g.m() == 0);
        prop_assert_eq!(mono.conflicts(&g).len(), g.m());
    }
}
