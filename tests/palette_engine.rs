//! Regression pins for the bitset palette engine.
//!
//! The engine swap (PR 9) replaced every `Vec`-scan pick/strike path of the headliners with
//! word-parallel [`PaletteSet`](arbcolor_graph::PaletteSet) operations over the flat
//! [`ColorPool`](arbcolor_graph::ColorPool) arena.  The swap is supposed to be **invisible**
//! in every output: these tests pin FNV-1a fingerprints of the full color vectors plus the
//! cost counters of Ghaffari–Kuhn and HKMT runs, captured on the pre-engine code, so any
//! future change to the pick paths that shifts even one color on one vertex fails loudly.
//! A second suite races the bitset [`ScheduledListColor`] against the preserved
//! [`VecScanListColor`] reference on fresh inputs.
//!
//! [`ScheduledListColor`]: arbcolor_runtime::algorithms::ScheduledListColor
//! [`VecScanListColor`]: arbcolor_runtime::algorithms::VecScanListColor

use arbcolor::ghaffari_kuhn::ghaffari_kuhn_coloring;
use arbcolor::hkmt::hkmt_coloring;
use arbcolor::report::ColoringRun;
use arbcolor_baselines::greedy::sequential_greedy;
use arbcolor_graph::{generators, Graph};
use arbcolor_runtime::algorithms::{
    ListColorSchedule, ListColorSlot, ScheduledListColor, VecScanListColor,
};
use arbcolor_runtime::Executor;

/// FNV-1a over the color vector: one shifted color anywhere changes the fingerprint.
fn fnv(colors: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in colors {
        h ^= c;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The four fingerprint families, exactly as captured pre-engine.
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(400, 0.05, 17).unwrap().with_shuffled_ids(3)),
        ("ba", generators::barabasi_albert(500, 3, 23).unwrap().with_shuffled_ids(5)),
        ("regular", generators::random_regular_like(600, 8, 103).unwrap().with_shuffled_ids(17)),
        ("star-forest", generators::star_forest_union(400, 2, 4, 19).unwrap().with_shuffled_ids(4)),
    ]
}

/// `(family, algo, colors-fnv, colors_used, rounds, messages, total_bits)` captured on the
/// pre-palette-engine code (commit `4aacd29`): the engine must reproduce every field.
const PINNED: &[(&str, &str, u64, usize, usize, usize, u64)] = &[
    ("gnp", "gk", 0xb1fcc4cfbf84bc61, 19, 81, 16252, 43070),
    ("gnp", "hkmt-42", 0x49ebad75f7ecbfac, 30, 7, 22792, 103737),
    ("gnp", "hkmt-7", 0x0491f4a4d49fb6e1, 30, 9, 21711, 100861),
    ("ba", "gk", 0xbd7b27300f0362b0, 16, 80, 14714, 43723),
    ("ba", "hkmt-42", 0x24bca800fe7db6a4, 24, 9, 7452, 27144),
    ("ba", "hkmt-7", 0xddb57f0fbdfdaee6, 25, 9, 7587, 28205),
    ("regular", "gk", 0xcb0bb38c4b7354db, 8, 41, 14460, 60703),
    ("regular", "hkmt-42", 0xc20f1dea2f0fc753, 9, 9, 13887, 47097),
    ("regular", "hkmt-7", 0xcea404c0620cac81, 9, 9, 14734, 50729),
    ("star-forest", "gk", 0x2b503d103dce6efe, 6, 35, 1640, 1798),
    ("star-forest", "hkmt-42", 0xd3629a08f6d9b17f, 11, 3, 3340, 16262),
    ("star-forest", "hkmt-7", 0x5b799825941a9be4, 11, 3, 3286, 15308),
];

fn check_pin(family: &str, algo: &str, run: &ColoringRun) {
    let pin = PINNED
        .iter()
        .find(|(f, a, ..)| *f == family && *a == algo)
        .unwrap_or_else(|| panic!("no pin for {family}/{algo}"));
    let (_, _, fp, colors_used, rounds, messages, total_bits) = *pin;
    assert_eq!(fnv(run.coloring.colors()), fp, "{family}/{algo}: colors diverged from pre-engine");
    assert_eq!(run.colors_used, colors_used, "{family}/{algo}: colors_used diverged");
    assert_eq!(run.report.rounds, rounds, "{family}/{algo}: rounds diverged");
    assert_eq!(run.report.messages, messages, "{family}/{algo}: messages diverged");
    assert_eq!(run.report.total_bits, total_bits, "{family}/{algo}: total_bits diverged");
}

#[test]
fn ghaffari_kuhn_outputs_are_bit_identical_to_the_pre_engine_code() {
    for (family, g) in &families() {
        check_pin(family, "gk", &ghaffari_kuhn_coloring(g).unwrap());
    }
}

#[test]
fn hkmt_outputs_are_bit_identical_to_the_pre_engine_code_for_both_seeds() {
    for (family, g) in &families() {
        for seed in [42u64, 7] {
            check_pin(family, &format!("hkmt-{seed}"), &hkmt_coloring(g, seed).unwrap());
        }
    }
}

#[test]
fn bitset_and_vecscan_pick_paths_agree_on_greedy_schedules() {
    for (_, g) in &families() {
        let schedule_coloring = sequential_greedy(g, None);
        let slots: Vec<ListColorSlot> = g
            .vertices()
            .map(|v| ListColorSlot {
                slot: schedule_coloring.color(v) as usize,
                palette: (0..=g.degree(v) as u64).collect(),
                forbidden: Vec::new(),
            })
            .collect();
        let schedule = ListColorSchedule::from_slots(&slots);
        let bitset = Executor::new(g).run(&ScheduledListColor::new(&schedule)).unwrap();
        let vecscan = Executor::new(g).run(&VecScanListColor::new(&slots)).unwrap();
        assert_eq!(bitset.outputs, vecscan.outputs, "pick paths diverged");
        assert_eq!(bitset.report, vecscan.report, "cost diverged between pick paths");
        assert!(schedule.stats().snapshot().picks_served >= g.n() as u64);
    }
}
