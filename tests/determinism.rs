//! Determinism regression suite: every seeded generator must produce an identical graph
//! when invoked twice with the same seed, different graphs for different seeds, and
//! identifier shuffling must never change the underlying topology.
//!
//! The whole experiment pipeline (and the reproducibility of EXPERIMENTS.md numbers)
//! rests on these invariants, so they get their own tier-1 test target.

use arbcolor_graph::{generators, Graph};

/// Canonical edge multiset of a graph: the sorted list of canonical `(u, v)` pairs.
///
/// `Graph` stores a deduplicated, sorted edge list, so equality of this vector is
/// equality of the edge multiset.
fn edge_multiset(g: &Graph) -> Vec<(usize, usize)> {
    let mut edges = g.edges().to_vec();
    edges.sort_unstable();
    edges
}

/// A named generator family instantiated from a `u64` seed.
type SeededGenerator = (&'static str, Box<dyn Fn(u64) -> Graph>);

/// All seeded generator families the workspace uses.
fn seeded_generators() -> Vec<SeededGenerator> {
    vec![
        (
            "union_of_random_forests",
            Box::new(|seed| generators::union_of_random_forests(300, 3, seed).unwrap()),
        ),
        (
            "star_forest_union",
            Box::new(|seed| generators::star_forest_union(300, 2, 4, seed).unwrap()),
        ),
        ("barabasi_albert", Box::new(|seed| generators::barabasi_albert(300, 3, seed).unwrap())),
        (
            "random_planar_like",
            Box::new(|seed| generators::random_planar_like(300, 0.8, seed).unwrap()),
        ),
        ("gnp", Box::new(|seed| generators::gnp(300, 0.02, seed).unwrap())),
        ("gnm", Box::new(|seed| generators::gnm(300, 600, seed).unwrap())),
        ("random_tree", Box::new(|seed| generators::random_tree(300, seed).unwrap())),
        ("random_forest", Box::new(|seed| generators::random_forest(300, 0.9, seed).unwrap())),
        ("hub_and_spokes", Box::new(|seed| generators::hub_and_spokes(300, 6, 2, seed).unwrap())),
        (
            "random_regular_like",
            Box::new(|seed| generators::random_regular_like(300, 4, seed).unwrap()),
        ),
        (
            "random_bipartite",
            Box::new(|seed| generators::random_bipartite(150, 150, 0.02, seed).unwrap()),
        ),
    ]
}

#[test]
fn seeded_generators_are_deterministic_across_runs() {
    for (name, gen) in seeded_generators() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen(seed);
            let b = gen(seed);
            assert_eq!(a, b, "{name}: two runs with seed {seed} disagree");
            assert_eq!(a.ids(), b.ids(), "{name}: identifiers diverge for seed {seed}");
        }
    }
}

#[test]
fn different_seeds_give_different_graphs() {
    // Not a hard mathematical guarantee, but with these sizes a collision would
    // overwhelmingly indicate the seed being ignored.
    for (name, gen) in seeded_generators() {
        let a = gen(1);
        let b = gen(2);
        assert_ne!(
            (edge_multiset(&a), a.ids().to_vec()),
            (edge_multiset(&b), b.ids().to_vec()),
            "{name}: seeds 1 and 2 produced identical graphs"
        );
    }
}

#[test]
fn with_shuffled_ids_preserves_the_edge_multiset() {
    for (name, gen) in seeded_generators() {
        let g = gen(7);
        let shuffled = g.with_shuffled_ids(99);
        assert_eq!(
            edge_multiset(&g),
            edge_multiset(&shuffled),
            "{name}: id shuffle changed the topology"
        );
        assert_eq!(g.n(), shuffled.n(), "{name}: id shuffle changed n");

        // The identifiers remain a permutation of 1..=n.
        let mut ids = shuffled.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (1..=g.n() as u64).collect::<Vec<_>>(), "{name}: ids not a permutation");
    }
}

#[test]
fn with_shuffled_ids_is_itself_deterministic() {
    let g = generators::union_of_random_forests(400, 3, 5).unwrap();
    assert_eq!(g.with_shuffled_ids(11), g.with_shuffled_ids(11));
    assert_ne!(g.with_shuffled_ids(11).ids(), g.with_shuffled_ids(12).ids());
}

#[test]
fn family_generation_is_deterministic() {
    let families = [
        generators::Family::Gnp { n: 100, p: 0.05 },
        generators::Family::ForestUnion { n: 100, k: 3 },
        generators::Family::StarForestUnion { n: 100, k: 2, hubs: 3 },
        generators::Family::PreferentialAttachment { n: 100, edges_per_vertex: 3 },
    ];
    for family in &families {
        assert_eq!(
            family.generate(13).unwrap(),
            family.generate(13).unwrap(),
            "{} not deterministic",
            family.name()
        );
    }
}
