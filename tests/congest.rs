//! CONGEST accounting suite: seeded determinism of the bandwidth columns and enforcement of
//! the per-edge budget.
//!
//! Three guarantees are pinned here:
//!
//! * **Seeded bit-identity.**  For a fixed seed, the HKMT randomized pipeline — colors,
//!   rounds, messages, *and* the new `total_bits` / `max_edge_bits` columns — is a pure
//!   function of the instance: identical across the sequential, work-stealing (at 1, 2, and
//!   4 threads), and reference executors.
//! * **Seed sensitivity without correctness loss.**  Different seeds may color differently,
//!   but every seed yields a legal coloring within `Δ + 1`.
//! * **Budget enforcement.**  In [`CostMode::Congest`] every executor rejects a message
//!   wider than the per-edge budget with the typed
//!   [`RuntimeError::CongestBudgetExceeded`] — naming the round, edge, width, and budget —
//!   rather than panicking or silently truncating.
//!
//! The executor-kind and cost-mode knobs are process-wide, so the tests that flip them run
//! inside one `#[test]` each (tests in one binary run concurrently by default).

use arbcolor::hkmt::hkmt_coloring;
use arbcolor_graph::generators;
use arbcolor_runtime::algorithms::ProposeMaxId;
use arbcolor_runtime::{
    default_executor, set_default_executor, CostMode, Executor, ExecutorKind, ReferenceExecutor,
    RuntimeError, ShardedExecutor,
};

/// Runs the full HKMT pipeline under `kind` and returns its outcome signature.
fn hkmt_signature(kind: ExecutorKind, seed: u64) -> (Vec<u64>, usize, usize, u64, u64) {
    let g = generators::barabasi_albert(600, 3, 71).unwrap().with_shuffled_ids(4);
    let previous = default_executor();
    set_default_executor(kind);
    let run = hkmt_coloring(&g, seed).expect("HKMT colors the fixture");
    set_default_executor(previous);
    assert!(run.coloring.is_legal(&g));
    (
        run.coloring.colors().to_vec(),
        run.report.rounds,
        run.report.messages,
        run.report.total_bits,
        run.report.max_edge_bits,
    )
}

#[test]
fn hkmt_is_bit_identical_across_executors_and_thread_counts_for_a_fixed_seed() {
    let expected = hkmt_signature(ExecutorKind::Sequential, 42);
    assert!(expected.3 > 0, "the trials must have been charged for their messages");
    for threads in [1usize, 2, 4] {
        assert_eq!(
            hkmt_signature(ExecutorKind::sharded(threads), 42),
            expected,
            "sharded executor with {threads} threads diverged"
        );
    }
    assert_eq!(
        hkmt_signature(ExecutorKind::Reference, 42),
        expected,
        "reference executor diverged"
    );
    // Same instance, same seed, run again: no hidden global state.
    assert_eq!(hkmt_signature(ExecutorKind::Sequential, 42), expected);
}

#[test]
fn different_seeds_stay_legal_and_within_delta_plus_one() {
    let g = generators::gnp(150, 0.06, 19).unwrap().with_shuffled_ids(3);
    let mut colorings = Vec::new();
    for seed in [1u64, 7, 1234, u64::MAX] {
        let run = hkmt_coloring(&g, seed).expect("every seed must color");
        assert!(run.coloring.is_legal(&g), "seed {seed} produced an illegal coloring");
        assert!(run.colors_used <= g.max_degree() + 1, "seed {seed} overshot Δ + 1");
        colorings.push(run.coloring.colors().to_vec());
    }
    // Sanity: the seed actually reaches the dice — at least two runs should differ.
    colorings.dedup();
    assert!(colorings.len() > 1, "all seeds produced the same coloring");
}

#[test]
fn congest_mode_rejects_an_over_wide_message_with_the_typed_error() {
    // ProposeMaxId broadcasts identifiers; with shuffled ids on a star some identifier needs
    // more than 3 bits, so a 3-bit budget must trip on every executor.  The error names the
    // offending round/edge/width so a violation is debuggable, not just fatal.
    let g = generators::star(20).unwrap().with_shuffled_ids(6);
    let tight = CostMode::Congest { bits_per_edge: 3 };

    let check = |err: RuntimeError| match err {
        RuntimeError::CongestBudgetExceeded { round, sender, receiver, bits, budget } => {
            assert_eq!(budget, 3);
            assert!(bits > 3);
            assert!(round >= 1);
            assert!(sender < g.n() && receiver < g.n() && sender != receiver);
        }
        other => panic!("expected CongestBudgetExceeded, got {other:?}"),
    };
    check(Executor::new(&g).with_cost_mode(tight).run(&ProposeMaxId).unwrap_err());
    check(
        ShardedExecutor::new(&g)
            .with_threads(4)
            .with_sequential_cutoff(0)
            .with_cost_mode(tight)
            .run(&ProposeMaxId)
            .unwrap_err(),
    );
    check(ReferenceExecutor::new(&g).with_cost_mode(tight).run(&ProposeMaxId).unwrap_err());

    // A budget wide enough for every identifier passes on the same graph, and the run
    // reports the same bits Local mode would have measured.
    let loose = CostMode::Congest { bits_per_edge: 64 };
    let capped = Executor::new(&g).with_cost_mode(loose).run(&ProposeMaxId).unwrap();
    let local = Executor::new(&g).run(&ProposeMaxId).unwrap();
    assert_eq!(capped.outputs, local.outputs);
    assert_eq!(capped.report, local.report);
}
