//! Property suite for the epoch-stamped frontier bitmap.
//!
//! The executors trust [`Frontier`] for two things: deduplicated marking (delivery marks a
//! receiver once per message, wakeups mark again) and deterministic vertex-ordered
//! enumeration with no leakage between epochs.  This suite drives multi-round marking
//! patterns derived from the shared generator suite — delivery-style marks along arcs plus
//! wakeup-style self-marks — and checks every round's schedule against a naively recomputed
//! active set.

use arbcolor_runtime::Frontier;
use proptest::prelude::*;
use std::collections::BTreeSet;

mod common;
use common::generator_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn frontier_schedule_equals_naively_recomputed_set_on_the_generator_suite(
        n in 16usize..90,
        seed in 0u64..1_000,
        rounds in 1usize..6,
    ) {
        for (family, g) in generator_suite(n, seed) {
            let mut frontier = Frontier::new(g.n());
            let mut schedule = Vec::new();
            for round in 0..rounds as u64 {
                // Mimic one executor round: a seed-dependent subset of vertices "acts" —
                // each marks itself (wakeup) and all of its neighbors (delivery), with
                // duplicate marks whenever two senders share a receiver.  The naive model
                // is a freshly built ordered set.
                let mut naive = BTreeSet::new();
                for v in g.vertices() {
                    if g.id(v).wrapping_mul(2654435761).wrapping_add(round * seed) % 3 == 0 {
                        frontier.mark(v);
                        naive.insert(v);
                        for &u in g.neighbors(v) {
                            frontier.mark(u);
                            naive.insert(u);
                        }
                    }
                }
                prop_assert_eq!(frontier.len(), naive.len(), "len on {} round {}", family, round);
                for v in g.vertices() {
                    prop_assert_eq!(
                        frontier.contains(v),
                        naive.contains(&v),
                        "contains({}) on {} round {}", v, family, round
                    );
                }
                frontier.take(&mut schedule);
                let expected: Vec<usize> = naive.into_iter().collect();
                prop_assert_eq!(&schedule, &expected, "schedule on {} round {}", family, round);
                // Nothing leaks into the next epoch.
                prop_assert!(frontier.is_empty(), "epoch leak on {} round {}", family, round);
            }
        }
    }
}
