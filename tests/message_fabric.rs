//! Equivalence suite for the arc-indexed message fabric.
//!
//! The flat-mailbox executors ([`Executor`] and [`ShardedExecutor`]) must stay
//! **bit-identical** — same per-vertex outputs, same round count, same message count — to
//! the [`ReferenceExecutor`], the preserved pre-fabric implementation with per-vertex
//! `Vec<Vec<(port, message)>>` mailboxes and linear-scan routing.  The reference shares no
//! routing or mailbox code with the fabric, so agreement here pins the whole delivery
//! rewrite: mirror-table routing, slot/spill mailboxes, and inbox iteration order.

use arbcolor_baselines::registry::headline_algorithms;
use arbcolor_graph::generators;
use arbcolor_runtime::algorithms::{FloodMaxId, ProposeMaxId};
use arbcolor_runtime::{
    default_executor, set_default_executor, Executor, ExecutorKind, ReferenceExecutor,
    ShardedExecutor,
};
use proptest::prelude::*;

mod common;
use common::generator_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn flat_executors_match_the_reference_on_the_generator_suite(
        n in 16usize..90,
        seed in 0u64..1_000,
        rounds in 1usize..8,
    ) {
        for (family, g) in generator_suite(n, seed) {
            let flood = FloodMaxId { rounds };
            let flood_ref = ReferenceExecutor::new(&g).run(&flood).unwrap();
            let propose_ref = ReferenceExecutor::new(&g).run(&ProposeMaxId).unwrap();

            let flood_flat = Executor::new(&g).run(&flood).unwrap();
            prop_assert_eq!(&flood_flat.outputs, &flood_ref.outputs, "flood on {}", family);
            prop_assert_eq!(flood_flat.report, flood_ref.report, "flood cost on {}", family);
            let propose_flat = Executor::new(&g).run(&ProposeMaxId).unwrap();
            prop_assert_eq!(&propose_flat.outputs, &propose_ref.outputs, "propose on {}", family);
            prop_assert_eq!(propose_flat.report, propose_ref.report, "propose cost on {}", family);

            for chunk_size in [1usize, 2, 3, 7] {
                let stolen = ShardedExecutor::new(&g)
                    .with_threads(2)
                    .with_chunk_size(chunk_size)
                    .with_sequential_cutoff(0);
                let flood_ws = stolen.run(&flood).unwrap();
                prop_assert_eq!(
                    &flood_ws.outputs, &flood_ref.outputs,
                    "work-stolen flood on {} (chunk {})", family, chunk_size
                );
                prop_assert_eq!(flood_ws.report, flood_ref.report, "flood cost on {}", family);
                let propose_ws = stolen.run(&ProposeMaxId).unwrap();
                prop_assert_eq!(
                    &propose_ws.outputs, &propose_ref.outputs,
                    "work-stolen propose on {} (chunk {})", family, chunk_size
                );
            }
        }
    }
}

#[test]
fn headline_pipelines_are_identical_under_the_reference_kind() {
    // End-to-end: both headline coloring pipelines, dispatched through the process-wide
    // executor switch, must produce the same palette, per-vertex colors, and LOCAL cost
    // whether every `run_algorithm` call lands on the old Vec-of-Vecs simulator or the flat
    // message fabric (sequential and sharded).
    let g = generators::union_of_random_forests(400, 3, 33).unwrap().with_shuffled_ids(7);
    let previous = default_executor();
    for algorithm in headline_algorithms() {
        set_default_executor(ExecutorKind::Reference);
        let reference = algorithm.run(&g).unwrap();
        for kind in [ExecutorKind::Sequential, ExecutorKind::sharded(3)] {
            set_default_executor(kind);
            let flat = algorithm.run(&g).unwrap();
            assert_eq!(flat.colors, reference.colors, "{} palette under {kind:?}", flat.name);
            assert_eq!(flat.report, reference.report, "{} cost under {kind:?}", flat.name);
            assert_eq!(
                flat.coloring.colors(),
                reference.coloring.colors(),
                "{} per-vertex colors under {kind:?}",
                flat.name
            );
        }
    }
    set_default_executor(previous);
}

#[test]
fn reference_kind_dispatches_and_reports_one_thread() {
    let g = generators::grid(5, 6).unwrap().with_shuffled_ids(3);
    assert_eq!(ExecutorKind::Reference.threads(), 1);
    let reference = ExecutorKind::Reference.run(&g, &FloodMaxId { rounds: 4 }).unwrap();
    let flat = ExecutorKind::Sequential.run(&g, &FloodMaxId { rounds: 4 }).unwrap();
    assert_eq!(reference.outputs, flat.outputs);
    assert_eq!(reference.report, flat.report);
}
