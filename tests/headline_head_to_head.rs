//! Cross-crate suite for the second headline algorithm: Ghaffari–Kuhn `(deg+1)`-list
//! coloring against Barenboim–Elkin through the shared registry, on the generator families
//! the E-series experiments race them on.

use arbcolor::ghaffari_kuhn::{ghaffari_kuhn_coloring, ghaffari_kuhn_list_coloring};
use arbcolor::list_coloring::ColorLists;
use arbcolor_baselines::registry::headline_algorithms;
use arbcolor_graph::{generators, Graph};
use proptest::prelude::*;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("forests", generators::union_of_random_forests(400, 3, 89).unwrap().with_shuffled_ids(10)),
        (
            "star-forests",
            generators::star_forest_union(400, 2, 4, 91).unwrap().with_shuffled_ids(11),
        ),
        (
            "preferential-attachment",
            generators::barabasi_albert(400, 3, 93).unwrap().with_shuffled_ids(12),
        ),
        ("gnp", generators::gnp(300, 0.03, 95).unwrap().with_shuffled_ids(13)),
        ("grid", generators::grid(15, 20).unwrap().with_shuffled_ids(14)),
    ]
}

#[test]
fn both_headliners_are_legal_within_delta_plus_one_on_every_family() {
    for (family, g) in families() {
        for algorithm in headline_algorithms() {
            let outcome = algorithm
                .run(&g)
                .unwrap_or_else(|e| panic!("{} failed on {family}: {e}", algorithm.name()));
            assert!(outcome.coloring.is_legal(&g), "{} illegal on {family}", outcome.name);
            assert!(
                outcome.colors <= g.max_degree() + 1,
                "{} used {} colors on {family}, Δ + 1 = {}",
                outcome.name,
                outcome.colors,
                g.max_degree() + 1
            );
            assert!(outcome.deterministic);
            assert!(outcome.report.rounds > 0);
        }
    }
}

#[test]
fn ghaffari_kuhn_round_envelope_holds_across_families() {
    for (family, g) in families() {
        let run = ghaffari_kuhn_coloring(&g).unwrap();
        let log_delta = ((g.max_degree() + 2) as f64).log2();
        let log_n = ((g.n() + 2) as f64).log2();
        let budget = (6.0 * log_delta * log_delta * log_n).ceil() as usize + 24;
        assert!(
            run.report.rounds <= budget,
            "{family}: {} rounds exceed the O(log² Δ · log n) budget {budget}",
            run.report.rounds
        );
    }
}

#[test]
fn ghaffari_kuhn_is_deterministic_across_runs() {
    for (_, g) in families() {
        let a = ghaffari_kuhn_coloring(&g).unwrap();
        let b = ghaffari_kuhn_coloring(&g).unwrap();
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.report, b.report);
        assert_eq!(a.ledger, b.ledger);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_list_instances_with_slack_are_always_solved(
        n in 40usize..200,
        a in 1usize..5,
        seed in 0u64..1_000,
        stride in 1u64..4,
        extra in 0u64..3,
    ) {
        let g = generators::union_of_random_forests(n, a, seed)
            .expect("valid parameters")
            .with_shuffled_ids(seed + 1);
        // Strided lists of size deg + 1 + extra: exercises non-contiguous color spaces and
        // instances whose slack is barely above the greedy threshold.
        let lists: Vec<Vec<u64>> = g
            .vertices()
            .map(|v| {
                let size = g.degree(v) as u64 + 1 + extra;
                (0..size).map(|i| i * stride + (v as u64 % stride.max(1))).collect()
            })
            .collect();
        let instance = ColorLists::new(&g, lists).unwrap();
        let run = ghaffari_kuhn_list_coloring(&g, &instance).unwrap();
        instance.verify(&g, &run.coloring).unwrap();
        prop_assert!(run.colors_used <= instance.color_space() as usize);
    }
}
