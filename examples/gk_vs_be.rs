//! Head-to-head: Barenboim–Elkin (arboricity-parameterized, Corollary 4.7) versus
//! Ghaffari–Kuhn (degree-parameterized `(deg+1)`-list coloring) on the same seeded graphs.
//!
//! The two headline algorithms answer the same question — a deterministic `(Δ+1)`-ish
//! coloring in polylogarithmic time — from opposite directions: Barenboim–Elkin exploits
//! *sparsity* (few edges everywhere: `O(log a · log n)` rounds, shines when `a ≪ Δ`), while
//! Ghaffari–Kuhn exploits *list slack* (every vertex has more colors than neighbors:
//! `O(log² Δ · log n)` rounds, `≤ Δ + 1` colors on every graph).
//!
//! Run with: `cargo run --release --example gk_vs_be`

use arbcolor::ghaffari_kuhn::ghaffari_kuhn_coloring;
use arbcolor::legal_coloring::sparse_delta_plus_one;
use arbcolor_graph::{degeneracy, generators, Graph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads: Vec<(&str, Graph)> = vec![
        // The Corollary 4.7 regime: tiny arboricity, huge hubs — Barenboim–Elkin territory.
        ("star forests", generators::star_forest_union(2_000, 2, 4, 41)?.with_shuffled_ids(5)),
        // Heavy-tailed degrees with moderate arboricity.
        (
            "preferential attachment",
            generators::barabasi_albert(2_000, 3, 43)?.with_shuffled_ids(6),
        ),
        // Locally dense random graph: degree and arboricity of the same order — Ghaffari–Kuhn
        // territory, since its guarantee does not degrade with density.
        ("G(n, p)", generators::gnp(1_500, 0.01, 47)?.with_shuffled_ids(7)),
    ];

    println!(
        "{:<24} {:>6} {:>4} {:>4} | {:>10} {:>7} {:>9} | {:>10} {:>7} {:>9}",
        "workload",
        "n",
        "Δ",
        "a",
        "BE colors",
        "rounds",
        "messages",
        "GK colors",
        "rounds",
        "messages"
    );
    for (name, g) in &workloads {
        let a = degeneracy::degeneracy(g).max(1);
        let be = sparse_delta_plus_one(g, a, 0.5, 1.0)?;
        let gk = ghaffari_kuhn_coloring(g)?;
        assert!(be.coloring.is_legal(g) && gk.coloring.is_legal(g));
        assert!(gk.colors_used <= g.max_degree() + 1);
        println!(
            "{:<24} {:>6} {:>4} {:>4} | {:>10} {:>7} {:>9} | {:>10} {:>7} {:>9}",
            name,
            g.n(),
            g.max_degree(),
            a,
            be.colors_used,
            be.report.rounds,
            be.report.messages,
            gk.colors_used,
            gk.report.rounds,
            gk.report.messages
        );
    }

    println!("\nGhaffari–Kuhn phase breakdown on the last workload:");
    let gk = ghaffari_kuhn_coloring(&workloads.last().unwrap().1)?;
    for phase in gk.ledger.phases() {
        println!(
            "  {:<20} {:>6} rounds {:>10} messages",
            phase.name, phase.report.rounds, phase.report.messages
        );
    }
    Ok(())
}
