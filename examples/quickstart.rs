//! Quickstart: color a bounded-arboricity graph with the paper's headline algorithm
//! (Corollary 4.6) and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use arbcolor::legal_coloring::{a_power_coloring, APowerParams};
use arbcolor_graph::{degeneracy, generators, properties};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A graph whose arboricity is at most 3 by construction (a union of 3 random forests),
    // with identifiers shuffled so nothing depends on vertex numbering.
    let graph = generators::union_of_random_forests(2_000, 3, 42)?.with_shuffled_ids(7);
    let summary = properties::summarize(&graph);
    println!(
        "graph: n = {}, m = {}, Δ = {}, degeneracy = {} (arboricity is between {} and {})",
        summary.n,
        summary.m,
        summary.max_degree,
        summary.degeneracy,
        summary.arboricity_lower,
        summary.degeneracy
    );

    // Corollary 4.6: O(a^{1+η}) colors in O(log a · log n) rounds.
    let a = degeneracy::degeneracy(&graph);
    let run = a_power_coloring(&graph, a, APowerParams { eta: 0.5, epsilon: 1.0 })?;

    assert!(run.coloring.is_legal(&graph));
    println!(
        "colored legally with {} colors (palette bound {}) in {} simulated LOCAL rounds and {} messages",
        run.colors_used, run.palette_bound, run.report.rounds, run.report.messages
    );
    println!("phase breakdown:");
    for phase in run.ledger.phases() {
        println!(
            "  {:<24} {:>6} rounds {:>10} messages",
            phase.name, phase.report.rounds, phase.report.messages
        );
    }
    Ok(())
}
