//! Cluster-head election (maximal independent set) on a bounded-arboricity topology.
//!
//! The MIS problem is the other classical symmetry-breaking task the paper improves: on graphs
//! of arboricity `a` it computes an MIS deterministically in `O(a + a^µ log n)` rounds
//! (Section 1.2), whereas the previous deterministic bounds were `O(a√(log n) + log n)` or
//! `2^{O(√(log n))}`.  This example elects cluster heads on a hub-and-spokes deployment and
//! compares against Luby's randomized algorithm.
//!
//! Run with: `cargo run --release --example mis_scheduling`

use arbcolor::mis::mis_bounded_arboricity;
use arbcolor_baselines::luby::luby_mis;
use arbcolor_graph::{degeneracy, generators};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = generators::hub_and_spokes(4_000, 12, 3, 21)?.with_shuffled_ids(4);
    let a = degeneracy::degeneracy(&topology).max(1);
    println!(
        "topology: n = {}, m = {}, Δ = {}, degeneracy = {a}",
        topology.n(),
        topology.m(),
        topology.max_degree()
    );

    let deterministic = mis_bounded_arboricity(&topology, a, 0.5, 1.0)?;
    deterministic.verify(&topology)?;
    println!(
        "paper (deterministic): {} cluster heads in {} simulated rounds",
        deterministic.size,
        deterministic.ledger.total().rounds
    );

    let randomized = luby_mis(&topology, 99);
    assert!(randomized.is_valid(&topology));
    println!(
        "Luby (randomized):     {} cluster heads in {} simulated rounds",
        randomized.size, randomized.report.rounds
    );
    Ok(())
}
