//! Coloring a heavy-tailed "social" graph: the Corollary 4.7 regime.
//!
//! Preferential-attachment graphs have a few enormous hubs (Δ grows polynomially with n) but
//! constant arboricity.  Degree-parameterized algorithms — Linial's O(Δ²) palette, the
//! O(Δ + log* n)-time (Δ+1)-colorings — pay for the hubs either in colors or in rounds.  The
//! paper's algorithm is parameterized by the arboricity, so it colors such graphs with o(Δ)
//! colors in polylogarithmic time (Corollary 4.7).
//!
//! Run with: `cargo run --release --example social_network`

use arbcolor::legal_coloring::sparse_delta_plus_one;
use arbcolor_baselines::registry::standard_baselines;
use arbcolor_graph::{degeneracy, generators};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::barabasi_albert(3_000, 3, 5)?.with_shuffled_ids(9);
    let a = degeneracy::degeneracy(&graph).max(1);
    let delta = graph.max_degree();
    println!(
        "social graph: n = {}, m = {}, Δ = {delta}, degeneracy = {a} (a ≪ Δ)",
        graph.n(),
        graph.m()
    );

    // Corollary 4.7: because a ≤ Δ^{1-ν}, the O(a^{1+η})-coloring uses at most Δ + 1 colors.
    let run = sparse_delta_plus_one(&graph, a, 0.5, 1.0)?;
    assert!(run.coloring.is_legal(&graph));
    println!(
        "paper (Cor. 4.7): {} colors (Δ + 1 = {}) in {} simulated rounds",
        run.colors_used,
        delta + 1,
        run.report.rounds
    );

    // How the §1.2 comparison looks on this graph.
    println!("\n{:<28} {:>8} {:>10} {:>8}", "baseline", "colors", "rounds", "det?");
    for baseline in standard_baselines(17) {
        match baseline.run(&graph) {
            Ok(outcome) => println!(
                "{:<28} {:>8} {:>10} {:>8}",
                outcome.name,
                outcome.colors,
                outcome.report.rounds,
                if outcome.deterministic { "yes" } else { "no" }
            ),
            Err(err) => println!("{:<28} failed: {err}", baseline.name()),
        }
    }
    Ok(())
}
