//! TDMA slot assignment in a sensor network.
//!
//! The paper's introduction motivates distributed coloring with real network tasks such as
//! TDMA slot assignment (Hermann & Tixeuil, AlgoSensors'04): two sensors within interference
//! range must not broadcast in the same time slot, and the number of distinct slots should be
//! small because the frame length (and hence the latency) is proportional to it.
//!
//! A planar-like deployment graph has constant arboricity regardless of how many sensors are
//! packed together, so the paper's algorithm assigns O(1)-size slot tables in polylogarithmic
//! time, while degree-based algorithms pay for the densest neighborhood.
//!
//! Run with: `cargo run --release --example sensor_tdma`

use arbcolor::legal_coloring::{o_a_coloring, OaParams};
use arbcolor_decompose::delta_linear::delta_plus_one_coloring;
use arbcolor_graph::{degeneracy, generators};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planar-like interference graph: a triangulated strip, 2-degenerate by construction.
    let field = generators::random_planar_like(5_000, 0.9, 11)?.with_shuffled_ids(3);
    let a = degeneracy::degeneracy(&field);
    println!(
        "sensor field: {} nodes, {} interference edges, Δ = {}, degeneracy = {a}",
        field.n(),
        field.m(),
        field.max_degree()
    );

    // Slot assignment with the paper's O(a)-coloring (Theorem 4.3).
    let slots = o_a_coloring(&field, a, OaParams { mu: 0.5, epsilon: 1.0 })?;
    assert!(slots.coloring.is_legal(&field));
    println!(
        "paper (Theorem 4.3): {} TDMA slots in {} simulated rounds",
        slots.colors_used, slots.report.rounds
    );

    // Degree-based baseline for comparison.
    let baseline = delta_plus_one_coloring(&field)?;
    println!(
        "degree-linear baseline: {} slots in {} simulated rounds",
        baseline.coloring.distinct_colors(),
        baseline.report.rounds
    );

    println!(
        "frame length ratio (baseline / paper): {:.2}",
        baseline.coloring.distinct_colors() as f64 / slots.colors_used as f64
    );
    Ok(())
}
