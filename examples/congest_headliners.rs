//! Bandwidth head-to-head: all three headliners under CONGEST accounting on one fixture.
//!
//! The LOCAL model charges rounds only; the CONGEST model additionally caps every edge at
//! `O(log n)` bits per round.  This example runs Barenboim–Elkin, Ghaffari–Kuhn, and the
//! randomized HKMT trials on the same preferential-attachment graph with the runtime in
//! [`CostMode::Congest`], so the per-edge budget is *enforced* while the report records the
//! two bandwidth columns: `total_bits` (aggregate traffic of the whole pipeline) and
//! `max_edge_bits` (the worst single edge in any single round).
//!
//! The interesting trade surfaces immediately: the randomized trials finish in far fewer
//! rounds, but pay for it with denser per-round traffic — exactly the rounds-versus-bits
//! tension the CONGEST model exists to make visible.
//!
//! Run with: `cargo run --release --example congest_headliners`

use arbcolor_baselines::registry::congest_headliners;
use arbcolor_graph::generators;
use arbcolor_runtime::{set_default_cost_mode, CostMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::barabasi_albert(2_000, 3, 101)?.with_shuffled_ids(8);
    let budget = CostMode::congest_for(g.n(), 64);
    let budget_bits = budget.bits_per_edge().expect("congest_for returns Congest");
    set_default_cost_mode(budget);

    println!(
        "CONGEST accounting on preferential attachment: n = {}, Δ = {}, budget = {} bits/edge/round\n",
        g.n(),
        g.max_degree(),
        budget_bits
    );
    println!(
        "{:<18} {:>6} {:>7} {:>9} {:>12} {:>14}",
        "headliner", "colors", "rounds", "messages", "total_bits", "max_edge_bits"
    );
    for algorithm in congest_headliners(42) {
        let outcome = algorithm.run(&g).map_err(|e| format!("{} failed: {e}", algorithm.name()))?;
        assert!(outcome.coloring.is_legal(&g));
        assert!(outcome.colors <= g.max_degree() + 1);
        assert!(outcome.report.max_edge_bits <= budget_bits);
        println!(
            "{:<18} {:>6} {:>7} {:>9} {:>12} {:>14}",
            outcome.name,
            outcome.colors,
            outcome.report.rounds,
            outcome.report.messages,
            outcome.report.total_bits,
            outcome.report.max_edge_bits
        );
    }

    set_default_cost_mode(CostMode::Local);
    println!("\nEvery run stayed within the enforced budget — the executors would have");
    println!("rejected any single-edge round above {budget_bits} bits with a typed error.");
    Ok(())
}
