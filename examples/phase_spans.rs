//! Phase-attributed observability: where do a headliner's rounds and bits actually go?
//!
//! The paper *analyzes* Barenboim–Elkin phase by phase (forest decomposition →
//! arbdefective coloring → legal-coloring cleanup), and the instrumented drivers record
//! exactly that decomposition as RAII spans whenever an [`obs::SpanCollector`] is
//! installed.  This example runs all three headliners on one graph, prints each one's
//! per-phase breakdown via [`obs::phase_rollup`], and asserts the attribution invariant
//! the test suite pins: the phases sum *bit-exactly* to the headline [`RoundReport`] —
//! attribution never invents or loses a round, a message, or a bit.
//!
//! The same collector renders as a text summary table ([`obs::summary_table`]) and as
//! Chrome trace-event JSON ([`obs::chrome_trace_json`], the format behind
//! `experiments --trace-out`, viewable at <https://ui.perfetto.dev>).
//!
//! Run with: `cargo run --release --example phase_spans`

use arbcolor_baselines::registry::congest_headliners;
use arbcolor_graph::generators;
use arbcolor_runtime::{obs, RoundReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::union_of_random_forests(3_000, 3, 57)?.with_shuffled_ids(4);
    println!("phase attribution on a forest union: n = {}, Δ = {}\n", g.n(), g.max_degree());

    let collector = obs::SpanCollector::new();
    let _recording = obs::install(&collector);

    for algorithm in congest_headliners(42) {
        // Wrap the whole run in a span: the driver's phase spans nest under it, so
        // `phase_rollup` can aggregate the direct children into a per-phase table.
        let parent = collector.len();
        let span = obs::phase(algorithm.name());
        let outcome = algorithm.run(&g).map_err(|e| format!("{} failed: {e}", algorithm.name()))?;
        span.charge(outcome.report);
        drop(span);

        assert!(outcome.coloring.is_legal(&g));
        println!(
            "{} — {} colors, {} rounds, {} messages, {} bits",
            outcome.name,
            outcome.colors,
            outcome.report.rounds,
            outcome.report.messages,
            outcome.report.total_bits
        );
        let phases = obs::phase_rollup(&collector.snapshot(), parent);
        for (name, report) in &phases {
            println!(
                "  {:<24} {:>6} rounds {:>9} messages {:>11} bits",
                name, report.rounds, report.messages, report.total_bits
            );
        }
        let sum = phases.iter().fold(RoundReport::zero(), |acc, (_, r)| acc.then(*r));
        assert_eq!(
            (sum.rounds, sum.messages, sum.total_bits),
            (outcome.report.rounds, outcome.report.messages, outcome.report.total_bits),
            "phases must sum bit-exactly to the headline report"
        );
        println!("  (phases sum bit-exactly to the headline report)\n");
    }

    println!("{}", obs::summary_table(&collector));
    println!("{}", collector.metrics().render());
    let trace = obs::chrome_trace_json(&collector);
    println!("Chrome trace export: {} bytes of trace-event JSON", trace.len());
    println!("(`experiments -- E21,E23 --trace-out trace.json` writes the same format;");
    println!(" load it at ui.perfetto.dev)");
    Ok(())
}
