//! Ingest a real graph from disk, color it, then absorb mixed edge insertions and
//! removals with localized recoloring — the workflow of a coloring service watching a
//! live network.
//!
//! Run with `cargo run --release --example ingest_and_recolor`.

use arbcolor::dynamic::{DynamicColoring, GraphUpdate, RepairStrategy};
use arbcolor_graph::io;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));

    // 1. Ingest Zachary's karate club from the checked-in edge list (format inferred from
    //    the extension; DIMACS .col and METIS files load the same way).
    let karate = io::read_graph(root.join("datasets/karate.edges"))?;
    println!("karate.edges: n = {}, m = {}, Δ = {}", karate.n(), karate.m(), karate.max_degree());
    assert_eq!((karate.n(), karate.m()), (34, 78));

    // 2. Hold the last six edges out of the initial build...
    let held_out: Vec<_> = karate.edges().iter().copied().rev().take(6).collect();
    let base = arbcolor_graph::Graph::from_edges(
        karate.n(),
        karate.edges().iter().copied().filter(|e| !held_out.contains(e)),
    )?;

    // 3. ...color the rest, then stream the held-out edges back in as two batches.
    let mut dynamic = DynamicColoring::new(base)?;
    println!(
        "initial coloring: {} colors (Δ + 1 = {})",
        dynamic.coloring().distinct_colors(),
        karate.max_degree() + 1
    );
    for (i, batch) in held_out.chunks(3).enumerate() {
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(batch.to_vec())])?;
        let strategy = match outcome.strategy {
            RepairStrategy::NoConflict => "no conflict",
            RepairStrategy::LocalRepair => "local repair",
            RepairStrategy::FullRecolor => "full recolor",
        };
        println!(
            "batch {}: +{} edges, frontier {}, repaired {} of {} vertices ({strategy})",
            i + 1,
            outcome.new_edges,
            outcome.frontier,
            outcome.repaired_vertices(),
            dynamic.graph().n(),
        );
        assert!(outcome.repaired_vertices() < dynamic.graph().n());
    }

    // 4. The maintained coloring is legal on the fully restored graph.
    assert_eq!(dynamic.graph().m(), karate.m());
    assert!(dynamic.coloring().is_legal(dynamic.graph()));
    println!(
        "final coloring: {} colors, legal on the restored graph",
        dynamic.coloring().distinct_colors()
    );

    // 5. The network shrinks: drop most of the hub's edges (a mixed batch — the second
    //    update re-inserts one removed edge, exercising last-write-wins resolution), then
    //    compact the palette to reclaim the slack the deletions freed.
    let hub = (0..karate.n()).max_by_key(|&v| karate.degree(v)).expect("non-empty graph");
    let doomed: Vec<_> = dynamic.graph().neighbors(hub).iter().map(|&u| (hub, u)).collect();
    let kept_back = doomed[0];
    let outcome = dynamic
        .apply(&[GraphUpdate::RemoveEdges(doomed), GraphUpdate::InsertEdges(vec![kept_back])])?;
    println!(
        "hub teardown: -{} edges, still {} colors before compaction",
        outcome.removed_edges,
        dynamic.coloring().distinct_colors()
    );
    assert!(dynamic.graph().has_edge(kept_back.0, kept_back.1));
    let delta = dynamic.compact();
    println!(
        "compact(): {} -> {} colors, {} vertices recolored (Δ + 1 = {})",
        delta.colors_before,
        delta.colors_after,
        delta.recolored,
        dynamic.graph().max_degree() + 1
    );
    assert!(delta.colors_after <= delta.colors_before);
    assert!(delta.colors_after <= dynamic.graph().max_degree() + 1);
    assert!(dynamic.coloring().is_legal(dynamic.graph()));
    Ok(())
}
