//! Serving colorings over TCP: an in-process daemon and a typed client session.
//!
//! Spawns [`ServiceServer`] on an ephemeral port, then walks one client through the whole
//! protocol — growth batches, a mixed insert/delete batch, color queries, a snapshot at an
//! older epoch, palette compaction after deletions, stats, verification, and a clean
//! shutdown that joins the server thread.  Everything here also works across processes:
//! `cargo run -p arbcolor_service --bin serviced` and `--bin service_client` speak the
//! same frames (see README § Serving colorings).

use arbcolor::dynamic::GraphUpdate;
use arbcolor_service::client::ServiceClient;
use arbcolor_service::server::{ColoringService, ServiceConfig, ServiceServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start a daemon on an ephemeral port, owning an edgeless 32-vertex graph.
    let service = ColoringService::empty(32, ServiceConfig::default())?;
    let handle = ServiceServer::bind(("127.0.0.1", 0), service)?.spawn()?;
    println!("daemon listening on {}", handle.addr());

    let mut client = ServiceClient::connect(handle.addr())?;

    // 2. Grow a wheel: a 16-cycle plus a hub adjacent to every rim vertex.
    let rim: Vec<(usize, usize)> = (0..16).map(|v| (v, (v + 1) % 16)).collect();
    let spokes: Vec<(usize, usize)> = (0..16).map(|v| (v, 16)).collect();
    let outcome = client.apply(vec![GraphUpdate::InsertEdges(rim)])?;
    println!(
        "epoch {}: inserted the rim ({} new edges, strategy {:?})",
        outcome.epoch, outcome.new_edges, outcome.strategy
    );
    let outcome = client.apply(vec![GraphUpdate::InsertEdges(spokes)])?;
    println!(
        "epoch {}: inserted the spokes (frontier {}, {} repaired)",
        outcome.epoch, outcome.frontier, outcome.repaired
    );

    // 3. Query a few colors and pull a snapshot from one epoch back.
    let colors = client.query_colors(vec![0, 1, 16])?;
    println!("colors of 0, 1, hub: {colors:?}");
    let (epoch, snapshot) = client.snapshot(Some(outcome.epoch - 1))?;
    println!("snapshot at epoch {epoch} (rim only): {} vertices", snapshot.len());

    // 4. A mixed batch: unhook half the spokes, rewire one rim chord — one apply call.
    let doomed: Vec<(usize, usize)> = (0..16).step_by(2).map(|v| (v, 16)).collect();
    let outcome = client
        .apply(vec![GraphUpdate::RemoveEdges(doomed), GraphUpdate::InsertEdges(vec![(0, 8)])])?;
    println!(
        "epoch {}: mixed batch removed {} and added {} edges",
        outcome.epoch, outcome.removed_edges, outcome.new_edges
    );

    // 5. Deletions leave palette slack; compaction reclaims it.
    let (_, before, after, recolored) = client.compact()?;
    println!("compaction: {before} -> {after} colors ({recolored} vertices recolored)");
    assert!(after <= before);

    // 6. Verify, read the tallies, and shut the daemon down cleanly.
    let (legal, conflicts) = client.verify()?;
    assert!(legal && conflicts == 0);
    let stats = client.stats()?;
    println!(
        "stats: n={} m={} epoch={} colors={} batches={} repaired={}",
        stats.n, stats.m, stats.epoch, stats.colors, stats.batches, stats.repaired
    );
    client.shutdown()?;
    handle.join()?;
    println!("daemon exited cleanly");
    Ok(())
}
