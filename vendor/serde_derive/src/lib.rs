//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): a small
//! hand-rolled parser over [`proc_macro::TokenStream`] that understands the
//! shapes this workspace actually derives on — structs with named fields,
//! tuple/unit structs, and enums with unit/tuple/struct variants, all without
//! generic parameters.
//!
//! `#[derive(Serialize)]` emits an `impl serde::Serialize` writing compact
//! JSON; `#[derive(Deserialize)]` emits the stand-in's marker impl.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item the derive is attached to.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the stand-in `serde::Serialize` (compact JSON writer).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derives the stand-in `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct { name, .. }
                | Item::TupleStruct { name, .. }
                | Item::UnitStruct { name }
                | Item::Enum { name, .. } => name,
            };
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!("serde stand-in derive: expected struct or enum, got {other:?}"))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stand-in derive: expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive: generic type `{name}` is not supported; extend vendor/serde_derive"
        ));
    }

    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: split_top_level(g.stream()).len() })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("serde stand-in derive: unsupported struct body {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("serde stand-in derive: unsupported enum body {other:?}")),
        }
    }
}

/// Skips attributes and visibility modifiers, rejecting `#[serde(...)]`: the
/// stand-in implements no serde attributes, and silently ignoring e.g.
/// `rename`/`skip` would produce wrong JSON instead of a compile error.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let mut inner = g.stream().into_iter();
                    let is_serde = matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
                    if is_serde {
                        return Err(
                            "serde stand-in derive: #[serde(...)] attributes are not supported; \
                             extend vendor/serde_derive before using them"
                                .to_string(),
                        );
                    }
                }
                *i += 2; // `#` + the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }
    Ok(())
}

/// Splits a token stream on top-level commas, treating `<...>` as nesting so
/// commas inside generic arguments (e.g. `BTreeMap<String, f64>`) don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: usize = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i)?;
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("serde stand-in derive: unsupported field {other:?}")),
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i)?;
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("serde stand-in derive: unsupported variant {other:?}")),
        };
        i += 1;
        let kind = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit, // unit variant, possibly with `= discriminant`
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => (name, gen_named_struct_body(fields)),
        Item::TupleStruct { name, arity } => (name, gen_tuple_struct_body(*arity)),
        Item::UnitStruct { name } => (name, "out.push_str(\"null\");".to_string()),
        Item::Enum { name, variants } => (name, gen_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_named_struct_body(fields: &[String]) -> String {
    let mut body = String::from("out.push('{');\n");
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
        body.push_str(&format!("::serde::Serialize::serialize_json(&self.{f}, out);\n"));
    }
    body.push_str("out.push('}');");
    body
}

fn gen_tuple_struct_body(arity: usize) -> String {
    if arity == 1 {
        return "::serde::Serialize::serialize_json(&self.0, out);".to_string();
    }
    let mut body = String::from("out.push('[');\n");
    for k in 0..arity {
        if k > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!("::serde::Serialize::serialize_json(&self.{k}, out);\n"));
    }
    body.push_str("out.push(']');");
    body
}

fn gen_enum_body(name: &str, variants: &[Variant]) -> String {
    if variants.is_empty() {
        return "match *self {}".to_string();
    }
    let mut body = String::from("match self {\n");
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                body.push_str(&format!("{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"));
            }
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                let pat = binders.join(", ");
                let mut arm = format!("{name}::{vname}({pat}) => {{\n");
                arm.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":\");\n"));
                if *arity == 1 {
                    arm.push_str("::serde::Serialize::serialize_json(__f0, out);\n");
                } else {
                    arm.push_str("out.push('[');\n");
                    for (k, b) in binders.iter().enumerate() {
                        if k > 0 {
                            arm.push_str("out.push(',');\n");
                        }
                        arm.push_str(&format!("::serde::Serialize::serialize_json({b}, out);\n"));
                    }
                    arm.push_str("out.push(']');\n");
                }
                arm.push_str("out.push('}');\n}\n");
                body.push_str(&arm);
            }
            VariantKind::Struct(fields) => {
                let pat = fields.join(", ");
                let mut arm = format!("{name}::{vname} {{ {pat} }} => {{\n");
                arm.push_str(&format!("out.push_str(\"{{\\\"{vname}\\\":{{\");\n"));
                for (k, f) in fields.iter().enumerate() {
                    if k > 0 {
                        arm.push_str("out.push(',');\n");
                    }
                    arm.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                    arm.push_str(&format!("::serde::Serialize::serialize_json({f}, out);\n"));
                }
                arm.push_str("out.push_str(\"}}\");\n}\n");
                body.push_str(&arm);
            }
        }
    }
    body.push('}');
    body
}
