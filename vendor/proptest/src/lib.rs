//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property suites
//! use: the [`Strategy`] trait over integer ranges and tuples, `prop_map`, the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and no
//! persistence: cases are sampled from a fixed-seed deterministic generator,
//! so failures reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Per-block configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator backing sampled cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next uniformly random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `proptest::Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

/// A strategy producing one constant value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// One sampling arm of a [`Union`]: a boxed closure drawing a value from the arm's
/// underlying strategy.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A uniform choice between same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<T> Union<T> {
    /// A union over the given sampling arms; must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let x = rng.next_u64() as u128;
        let i = ((x * self.arms.len() as u128) >> 64) as usize;
        (self.arms[i])(rng)
    }
}

/// Picks uniformly among the listed strategies (mirrors `proptest::prop_oneof!`; the real
/// macro's per-arm weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
        > = ::std::vec::Vec::new();
        $({
            let s = $strat;
            arms.push(::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                $crate::Strategy::sample(&s, rng)
            }));
        })+
        $crate::Union::new(arms)
    }};
}

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lengths: core::ops::Range<usize>,
    }

    /// Samples a `Vec` whose length is drawn from `lengths` and whose elements come from
    /// `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, lengths: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lengths }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lengths.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` sampling its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: the test name hashed FNV-1a style.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    let mut run = || -> ::std::result::Result<(), ::std::string::String> {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    };
                    if let Err(message) = run() {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds((a, b) in (0usize..10, 5u64..6), c in 1usize..4) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn prop_map_applies((x, y) in (0u32..100, 0u32..100).prop_map(|(x, y)| (x + 1, y))) {
            prop_assert!(x >= 1);
            prop_assert_ne!(x, 0);
            let _ = y;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = (20usize..120, 1usize..5);
        let mut r1 = TestRng::new(99);
        let mut r2 = TestRng::new(99);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
