//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`], a genuine ChaCha8
//! keystream generator (original djb layout: 64-bit block counter in words
//! 12-13, zero nonce) seeded by a 256-bit key.
//!
//! The exact output stream is not guaranteed to be byte-identical to the
//! upstream `rand_chacha` crate; what the workspace relies on — high-quality,
//! fully deterministic output per seed — holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA8_DOUBLE_ROUNDS: usize = 4;

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let input = state;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }

        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32,000 bits, expect ~16,000 set; allow a wide band.
        assert!((14_000..18_000).contains(&ones), "{ones} set bits");
    }
}
