//! Minimal offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the subset of the `rand` 0.8 surface this workspace uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`seq::SliceRandom`] and the [`distributions`] module. Seeded
//! generators are fully deterministic, which is all the workspace relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64.
    ///
    /// Deterministic, but **not** stream-compatible with the upstream `rand`
    /// crate (which expands `u64` seeds differently): swapping the stand-in
    /// for real `rand` changes every seeded stream, and with it any recorded
    /// experiment numbers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`rng.gen::<f64>()` etc.).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`rng.gen_range(0..n)`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128;
                (self.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..1);
            assert_eq!(y, 0);
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = Counter(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
