//! Slice shuffling and choosing (`rand::seq` subset).

use crate::RngCore;

/// Uniform index in `0..n` for an unsized generator reference.
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

/// Extension methods on slices that consume randomness.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = uniform_index(rng, self.len());
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut Lcg::seed_from_u64(3));
        b.shuffle(&mut Lcg::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_respects_emptiness() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut Lcg(1)).is_none());
        assert!([5u8].choose(&mut Lcg(1)) == Some(&5));
    }
}
