//! The tiny slice of `rand::distributions` the workspace uses.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for integers,
/// uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
