//! Offline stand-in for `serde_json`: compact JSON rendering of any type
//! implementing the vendored [`serde::Serialize`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization error. The stand-in writer is infallible, so this is only a
/// type-level match for the upstream signature.
#[derive(Debug, Clone)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json())
}

/// Renders `value` as JSON. The stand-in does not pretty-print; output is the
/// same compact encoding as [`to_string`].
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_through_serialize() {
        assert_eq!(super::to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }
}
