//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with a simple median-of-samples
//! wall-clock measurement instead of criterion's statistical machinery.
//! Results print one line per benchmark to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter (`name/param`).
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_count` samples of one call each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_count.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(label: &str, bencher: &mut Bencher) {
    println!("{label:<60} {:>12.3?} (median of {})", bencher.median(), bencher.samples.len());
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_count: self.sample_count };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &mut bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_count: self.sample_count };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &mut bencher);
        self
    }

    /// Finishes the group (no-op in the stand-in; mirrors criterion).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_count: usize,
}

impl Criterion {
    /// Sets the default number of samples per benchmark (builder style, like
    /// upstream criterion's `Criterion::sample_size`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n;
        self
    }

    fn effective_sample_count(&self) -> usize {
        if self.sample_count == 0 {
            10
        } else {
            self.sample_count
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.effective_sample_count(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher =
            Bencher { samples: Vec::new(), sample_count: self.effective_sample_count() };
        f(&mut bencher);
        report(&id.id, &mut bencher);
        self
    }
}

/// Declares a function running each listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}
