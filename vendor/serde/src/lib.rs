//! Offline stand-in for `serde`.
//!
//! The real `serde` is unavailable in this build environment, so this crate
//! provides the same import surface the workspace uses — `Serialize` and
//! `Deserialize` traits plus same-named derive macros — backed by a direct
//! compact-JSON writer instead of serde's visitor architecture. `serde_json`
//! (also vendored) renders any `Serialize` type through [`Serialize::to_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A type that can write itself as compact JSON.
///
/// Derivable via `#[derive(Serialize)]`; implemented for the primitives and
/// standard containers the workspace serializes.
pub trait Serialize {
    /// Appends this value's compact JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);

    /// Convenience wrapper returning the compact JSON encoding.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The workspace derives it for symmetry with upstream serde but never
/// deserializes through the stand-in, so the trait has no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_display {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                let _ = write!(out, "{}", self);
            }
        }
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                if self.is_finite() {
                    let _ = write!(out, "{}", self);
                } else {
                    // serde_json renders non-finite floats as null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// Appends the JSON string-literal encoding of `s` (with quotes) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(self.encode_utf8(&mut buf), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

/// Map keys must render as JSON strings; anything `Display` qualifies.
fn write_json_map<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>, out: &mut String)
where
    K: std::fmt::Display + 'a,
    V: Serialize + 'a,
{
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&k.to_string(), out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers_render_as_json() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(7u32).to_json(), "7");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(m.to_json(), r#"{"a":1.5,"b":2}"#);
        assert_eq!((1u8, "x").to_json(), r#"[1,"x"]"#);
    }
}
